// Startup-phase breakdown — *where* Fig 8/9's time goes, per runtime
// class, at densities 10 and 400. Every pod's startup timeline (opened at
// scheduler binding, closed when the workload executes) is split into
// tiled phases: sched.bind → kubelet.sync → sandbox.cni → cri.create →
// shim.spawn → runtime.exec (runc-v2 path) → engine.load / interp.boot →
// wasi.start. The breakdown explains the paper's shape: daemon-serialized
// shim spawn dominates the runwasi shims at 400, interpreter boot
// dominates Python, and WAMR-in-crun's engine phase stays negligible.
//
// argv[1] (optional) is an export path: per-run Chrome trace JSON plus
// Prometheus metrics text, byte-identical across same-seed runs — CI runs
// this bench twice and diffs the files.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_support/report.hpp"
#include "obs/observability.hpp"

using namespace wasmctr;
using namespace wasmctr::bench;
using k8s::Cluster;
using k8s::DeployConfig;

namespace {

struct Breakdown {
  DeployConfig config;
  uint32_t density = 0;
  std::vector<obs::PhaseStat> phases;   // first-appearance order
  double mean_startup_s = 0;            // mean per-pod root duration
  double makespan_s = 0;                // Cluster::startup_makespan()
  double max_tiling_error = 0;          // worst |phase sum − root| / root
  double max_root_end_s = 0;            // latest root-span end
  uint64_t pods = 0;
};

const obs::PhaseStat* phase_of(const Breakdown& b, const std::string& name) {
  for (const obs::PhaseStat& p : b.phases) {
    if (p.phase == name) return &p;
  }
  return nullptr;
}

Breakdown run_breakdown(DeployConfig config, uint32_t density,
                        std::string* export_out) {
  Cluster cluster;
  Status st = cluster.deploy(config, density);
  assert(st.is_ok());
  (void)st;
  cluster.run();
  assert(cluster.running_count() == density);

  const obs::Tracer& tracer = cluster.obs().tracer;
  Breakdown b;
  b.config = config;
  b.density = density;
  b.phases = tracer.pod_phase_stats();
  b.makespan_s = to_seconds(cluster.startup_makespan());

  // Per-pod tiling check: the closed phase children of each root span
  // must sum to the root's duration (phases begin exactly where the
  // previous one ends, so any gap is an instrumentation bug).
  std::map<uint64_t, double> child_sum;
  for (const obs::Span& s : tracer.spans()) {
    if (s.parent != 0 && s.closed && !s.instant) {
      child_sum[s.parent] += to_seconds(s.duration());
    }
  }
  double startup_sum = 0;
  for (const obs::Span* root : tracer.pod_roots()) {
    const double dur = to_seconds(root->duration());
    startup_sum += dur;
    ++b.pods;
    if (dur > 0) {
      const double err = std::abs(child_sum[root->id] - dur) / dur;
      b.max_tiling_error = std::max(b.max_tiling_error, err);
    }
    b.max_root_end_s = std::max(b.max_root_end_s, to_seconds(root->end));
  }
  b.mean_startup_s = b.pods == 0 ? 0 : startup_sum / static_cast<double>(b.pods);

  if (export_out != nullptr) {
    char header[128];
    std::snprintf(header, sizeof(header), "=== %s n=%u ===\n",
                  k8s::deploy_config_name(config), density);
    *export_out += header;
    *export_out += tracer.chrome_trace_json();
    *export_out += '\n';
    *export_out += cluster.obs().metrics.prometheus_text();
  }
  return b;
}

void print_breakdown(const Breakdown& b) {
  double total = 0;
  for (const obs::PhaseStat& p : b.phases) total += p.total_s;
  std::printf("\n  %-14s n=%-4u makespan=%8.3fs mean/pod=%8.3fs\n",
              k8s::deploy_config_name(b.config), b.density, b.makespan_s,
              b.mean_startup_s);
  for (const obs::PhaseStat& p : b.phases) {
    const double share = total > 0 ? p.total_s / total * 100.0 : 0;
    const double per_pod_ms =
        b.pods == 0 ? 0 : p.total_s / static_cast<double>(b.pods) * 1e3;
    std::printf("    %-14s %10.3fs total %10.3f ms/pod %6.2f %%\n",
                p.phase.c_str(), p.total_s, per_pod_ms, share);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string export_path =
      argc > 1 ? argv[1] : "bench_startup_breakdown_export.txt";
  const std::vector<uint32_t> densities = {10, 400};
  std::string export_data;
  std::vector<Breakdown> all;

  std::printf("STARTUP-PHASE BREAKDOWN per runtime class (Fig 8/9 anatomy)\n");
  for (const DeployConfig config : k8s::kAllConfigs) {
    for (const uint32_t density : densities) {
      std::printf("running %s n=%u ...\n", k8s::deploy_config_name(config),
                  density);
      all.push_back(run_breakdown(config, density, &export_data));
      print_breakdown(all.back());
    }
  }

  {
    std::ofstream out(export_path, std::ios::binary | std::ios::trunc);
    out << export_data;
  }
  std::printf("\nexported %zu bytes of trace+metrics to %s\n",
              export_data.size(), export_path.c_str());

  const auto get = [&](DeployConfig c, uint32_t d) -> const Breakdown& {
    for (const Breakdown& b : all) {
      if (b.config == c && b.density == d) return b;
    }
    assert(false && "breakdown not measured");
    static Breakdown dummy;
    return dummy;
  };

  ShapeChecks checks;
  // Accounting: every pod's phases tile its startup exactly, and the
  // latest timeline end is the makespan the paper measures.
  double worst_tiling = 0;
  double worst_makespan_gap = 0;
  for (const Breakdown& b : all) {
    worst_tiling = std::max(worst_tiling, b.max_tiling_error);
    if (b.makespan_s > 0) {
      worst_makespan_gap =
          std::max(worst_makespan_gap,
                   std::abs(b.max_root_end_s - b.makespan_s) / b.makespan_s);
    }
  }
  checks.check(worst_tiling < 0.01,
               "per-pod phase sums within 1 % of startup time", 0.01,
               worst_tiling);
  checks.check(worst_makespan_gap < 0.01,
               "latest timeline end matches startup_makespan", 0.01,
               worst_makespan_gap);

  // Per-pod seconds spent in `phase`, 0 when absent.
  const auto per_pod = [&](DeployConfig c, uint32_t d,
                           const std::string& phase) -> double {
    const obs::PhaseStat* p = phase_of(get(c, d), phase);
    if (p == nullptr || p->count == 0) return 0;
    return p->total_s / static_cast<double>(p->count);
  };

  // Runwasi anatomy, the Fig 8 → Fig 9 flip: at density 10 engine load
  // is the runtime-side cost and shim spawn is negligible; at 400 the
  // daemon-serialized spawn queue overtakes it and keeps growing.
  for (const DeployConfig shim :
       {DeployConfig::kShimWasmtime, DeployConfig::kShimWasmer,
        DeployConfig::kShimWasmEdge}) {
    const std::string name = k8s::deploy_config_name(shim);
    checks.check(per_pod(shim, 10, "shim.spawn") <
                     per_pod(shim, 10, "engine.load"),
                 "engine.load outweighs shim.spawn at n=10 (" + name + ")");
    checks.check(per_pod(shim, 400, "shim.spawn") >
                     per_pod(shim, 400, "engine.load"),
                 "shim.spawn overtakes engine.load at n=400 (" + name + ")");
    checks.check(per_pod(shim, 400, "shim.spawn") >
                     2.0 * per_pod(shim, 10, "shim.spawn"),
                 "per-pod shim.spawn grows >2x from n=10 to n=400 (" + name +
                     ")");
  }

  // Python anatomy: the interpreter boot each pod pays costs more than
  // the whole WAMR engine phase, and the class starts slower than ours
  // at both densities.
  for (const DeployConfig py :
       {DeployConfig::kCrunPython, DeployConfig::kRuncPython}) {
    const std::string name = k8s::deploy_config_name(py);
    for (const uint32_t d : densities) {
      checks.check(per_pod(py, d, "interp.boot") >
                       per_pod(DeployConfig::kCrunWamr, d, "engine.load"),
                   "interp.boot (" + name + ") > crun-wamr engine.load at n=" +
                       std::to_string(d));
      checks.check(get(py, d).makespan_s >
                       get(DeployConfig::kCrunWamr, d).makespan_s,
                   name + " makespan > crun-wamr makespan at n=" +
                       std::to_string(d));
    }
  }

  // The contribution: at density 10 (no contention, intrinsic cost)
  // WAMR-in-crun pays the cheapest engine.load of the crun Wasm family —
  // a sliver next to the preexisting integrations' full engine starts.
  for (const DeployConfig other :
       {DeployConfig::kCrunWasmtime, DeployConfig::kCrunWasmer,
        DeployConfig::kCrunWasmEdge}) {
    checks.check(per_pod(DeployConfig::kCrunWamr, 10, "engine.load") <
                     0.5 * per_pod(other, 10, "engine.load"),
                 "crun-wamr engine.load < half of " +
                     std::string(k8s::deploy_config_name(other)) +
                     "'s at n=10");
  }

  // Runwasi pays no separate runtime.exec phase (the shim is the runtime).
  checks.check(phase_of(get(DeployConfig::kShimWasmtime, 10),
                        "runtime.exec") == nullptr,
               "runwasi path has no runtime.exec phase");

  return checks.summarize("startup_breakdown");
}
