// Density sweep: the paper's core experiment shape — deploy 10..400 pods
// of a chosen runtime configuration and watch how per-container memory and
// startup latency scale. Usage: density_sweep [config-name]
#include <cstdio>
#include <cstring>

#include "k8s/cluster.hpp"

using namespace wasmctr;
using namespace wasmctr::k8s;

int main(int argc, char** argv) {
  DeployConfig config = DeployConfig::kCrunWamr;
  if (argc > 1) {
    bool found = false;
    for (const DeployConfig c : kAllConfigs) {
      if (std::strcmp(argv[1], deploy_config_name(c)) == 0) {
        config = c;
        found = true;
        break;
      }
    }
    if (!found) {
      std::printf("unknown config '%s'; available:\n", argv[1]);
      for (const DeployConfig c : kAllConfigs) {
        std::printf("  %s\n", deploy_config_name(c));
      }
      return 1;
    }
  }

  std::printf("density sweep for %s\n\n", deploy_config_label(config));
  std::printf("%-8s %-10s %-14s %-14s %-12s %s\n", "pods", "running",
              "metrics MiB", "free MiB", "startup s", "node used");
  for (const uint32_t n : {10u, 25u, 50u, 100u, 200u, 400u}) {
    Cluster cluster;
    if (Status st = cluster.deploy(config, n); !st.is_ok()) {
      std::printf("deploy failed: %s\n", st.to_string().c_str());
      return 1;
    }
    cluster.run();
    const mem::FreeReport fr = cluster.node().memory().free_report();
    std::printf("%-8u %-10zu %-14.3f %-14.3f %-12.2f %s\n", n,
                cluster.running_count(),
                cluster.metrics_avg_per_container().mib(),
                cluster.free_avg_per_container().mib(),
                to_seconds(cluster.startup_makespan()),
                format_bytes(fr.used).c_str());
    if (cluster.running_count() != n) {
      std::printf("unexpected failures at density %u\n", n);
      return 1;
    }
  }
  std::printf("\nper-container memory is ~flat with density (the paper's\n"
              "scaling claim); startup grows once pods out-number cores.\n");
  return 0;
}
