// WASI plumbing end to end (paper §III-C item 2): a pod's OCI config
// carries args/env; the module reads them through WASI and writes a file
// through a preopened directory. We then inspect the bundle's filesystem
// to prove the write landed.
#include <cstdio>

#include "k8s/cluster.hpp"

using namespace wasmctr;
using namespace wasmctr::k8s;

int main() {
  Cluster cluster;

  // The file-logger workload writes "status=ok" into /data/out.log via
  // path_open + fd_write (see src/wasm/workloads.cpp).
  PodSpec spec;
  spec.name = "logger";
  spec.image = "file-logger:wasm";
  spec.runtime_class = "crun-wamr";
  spec.args = {"--level", "info"};
  spec.env = {{"DEPLOY_ENV", "prod"}, {"REGION", "eu-west"}};
  if (Status st = cluster.deploy_pod(std::move(spec)); !st.is_ok()) {
    std::printf("deploy failed: %s\n", st.to_string().c_str());
    return 1;
  }
  cluster.run();

  const Pod* pod = cluster.api().pod("logger");
  if (pod == nullptr || pod->status.phase != PodPhase::kRunning) {
    std::printf("pod did not reach Running: %s\n",
                pod ? pod->status.message.c_str() : "missing");
    return 1;
  }
  std::printf("pod %s is %s (sandbox %s, container %s)\n",
              pod->spec.name.c_str(), pod_phase_name(pod->status.phase),
              pod->status.sandbox_id.c_str(),
              pod->status.container_id.c_str());

  // The bundle lives where containerd wrote it; /data maps to its rootfs.
  const std::string bundle =
      "run/containerd/io.containerd.runtime.v2.task/k8s.io/" +
      pod->status.container_id;
  auto logged = cluster.node().fs().read_file(bundle + "/rootfs/data/out.log");
  if (!logged) {
    std::printf("log file missing: %s\n", logged.status().to_string().c_str());
    return 1;
  }
  std::printf("module wrote through the /data preopen: %s", logged->c_str());

  // Show the generated OCI config the WASI options were derived from.
  auto config = cluster.node().fs().read_file(bundle + "/config.json");
  if (config) {
    std::printf("\nOCI config.json the crun-WAMR integration consumed:\n%s\n",
                config->c_str());
  }
  return 0;
}
