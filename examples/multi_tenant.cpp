// Multi-tenant scenario (the paper's Conclusion names this as future
// work): two tenants share a node; each pod carries a memory limit
// enforced through its pod cgroup. Tenant B's limits are set below the
// engine footprint of the heavyweight runtime it requests, so its pods
// are rejected by the memory controller while tenant A is unaffected —
// density isolation in action.
#include <cstdio>

#include "k8s/cluster.hpp"
#include "support/log.hpp"

using namespace wasmctr;
using namespace wasmctr::k8s;

int main() {
  // Tenant B's rejections are the point of the demo; keep stderr clean.
  Log::set_level(LogLevel::kOff);
  Cluster cluster;

  // Tenant A: WAMR microservices with a comfortable 32 MiB ceiling.
  for (int i = 0; i < 8; ++i) {
    PodSpec spec;
    spec.name = "tenant-a-svc-" + std::to_string(i);
    spec.image = "microservice:wasm";
    spec.runtime_class = "crun-wamr";
    spec.memory_limit = 32ull << 20;
    spec.env = {{"TENANT", "a"}};
    if (Status st = cluster.deploy_pod(std::move(spec)); !st.is_ok()) {
      std::printf("deploy failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  // Tenant B insists on crun-wasmer but budgets only 8 MiB per pod —
  // below that engine's fixed footprint.
  for (int i = 0; i < 4; ++i) {
    PodSpec spec;
    spec.name = "tenant-b-svc-" + std::to_string(i);
    spec.image = "microservice:wasm";
    spec.runtime_class = "crun-wasmer";
    spec.memory_limit = 8ull << 20;
    spec.env = {{"TENANT", "b"}};
    if (Status st = cluster.deploy_pod(std::move(spec)); !st.is_ok()) {
      std::printf("deploy failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  cluster.run();

  std::printf("NAME                STATUS    LIMIT     NOTE\n");
  for (const Pod* pod : cluster.api().pods()) {
    std::printf("%-19s %-9s %-9s %s\n", pod->spec.name.c_str(),
                pod_phase_name(pod->status.phase),
                format_bytes(Bytes(pod->spec.memory_limit)).c_str(),
                pod->status.message.c_str());
  }
  std::printf("\nrunning=%zu failed=%zu\n", cluster.running_count(),
              cluster.failed_count());
  std::printf("tenant A per-container working set: %.2f MiB\n",
              cluster.metrics_avg_per_container().mib());

  // Expected: all 8 tenant-A pods run; all 4 tenant-B pods are rejected
  // by cgroup memory.max, without disturbing tenant A.
  const bool isolation_held =
      cluster.running_count() == 8 && cluster.failed_count() == 4;
  std::printf("tenant isolation: %s\n", isolation_held ? "HELD" : "BROKEN");
  return isolation_held ? 0 : 1;
}
