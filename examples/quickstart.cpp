// Quickstart: build a Wasm module programmatically, run it directly in the
// embedded WAMR-style engine, then deploy it as a Kubernetes pod through
// the crun-WAMR integration — the two layers of the public API.
#include <cstdio>

#include "engines/engine.hpp"
#include "wasm/decoder.hpp"
#include "k8s/cluster.hpp"
#include "wasm/builder.hpp"
#include "wasm/workloads.hpp"

using namespace wasmctr;

int main() {
  // ---- 1. Build a module: (a + b) * 2, exported as "calc" --------------
  wasm::ModuleBuilder builder;
  wasm::FnBuilder& calc = builder.add_function(
      "calc", {wasm::ValType::kI32, wasm::ValType::kI32},
      {wasm::ValType::kI32});
  calc.local_get(0).local_get(1).i32_add().i32_const(2).i32_mul().end();
  const std::vector<uint8_t> module_bytes = builder.build();
  std::printf("built a %zu-byte wasm module\n", module_bytes.size());

  // ---- 2. Run it directly through the engine ---------------------------
  auto decoded = wasm::decode_module(module_bytes);
  if (!decoded) {
    std::printf("decode failed: %s\n", decoded.status().to_string().c_str());
    return 1;
  }
  wasm::ImportResolver no_imports;
  auto instance = wasm::Instance::instantiate(std::move(*decoded), no_imports);
  if (!instance) {
    std::printf("instantiate failed: %s\n",
                instance.status().to_string().c_str());
    return 1;
  }
  const wasm::Value args[] = {wasm::Value::from_i32(20),
                              wasm::Value::from_i32(1)};
  auto result = (*instance)->invoke("calc", args);
  if (!result || !result->has_value()) {
    std::printf("invoke failed\n");
    return 1;
  }
  std::printf("calc(20, 1) = %d (expected 42)\n", (**result).i32());

  // ---- 3. Deploy the paper's microservice on the cluster ---------------
  k8s::Cluster cluster;
  if (Status st = cluster.deploy(k8s::DeployConfig::kCrunWamr, 3, "demo");
      !st.is_ok()) {
    std::printf("deploy failed: %s\n", st.to_string().c_str());
    return 1;
  }
  cluster.run();
  std::printf("deployed %zu pods via crun-wamr in %.2f s (virtual time)\n",
              cluster.running_count(),
              to_seconds(cluster.startup_makespan()));
  auto out = cluster.pod_stdout("demo-crun-wamr-0");
  std::printf("pod stdout: %s", out ? out->c_str() : "<unavailable>\n");
  std::printf("memory per container: %.2f MiB (metrics server), "
              "%.2f MiB (free)\n",
              cluster.metrics_avg_per_container().mib(),
              cluster.free_avg_per_container().mib());
  return 0;
}
