// Hybrid deployment (paper §III-C): Wasm and traditional Python containers
// run side by side in one cluster — pods choose their runtime through the
// RuntimeClass, no extra infrastructure. Prints a kubectl-style overview
// and a memory breakdown per runtime class.
#include <cstdio>
#include <map>

#include "k8s/cluster.hpp"

using namespace wasmctr;
using namespace wasmctr::k8s;

int main() {
  Cluster cluster;

  // Mixed fleet: an edge-style deployment with lightweight Wasm sidecars
  // next to legacy Python services.
  struct Group {
    DeployConfig config;
    uint32_t replicas;
    const char* prefix;
  };
  const Group groups[] = {
      {DeployConfig::kCrunWamr, 12, "wasm-api"},
      {DeployConfig::kShimWasmtime, 6, "wasm-ingest"},
      {DeployConfig::kCrunPython, 8, "legacy-py"},
      {DeployConfig::kRuncPython, 4, "batch-py"},
  };
  for (const Group& g : groups) {
    if (Status st = cluster.deploy(g.config, g.replicas, g.prefix);
        !st.is_ok()) {
      std::printf("deploy failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  cluster.run();

  std::printf("NAME                             STATUS    RUNTIME\n");
  for (const Pod* pod : cluster.api().pods()) {
    std::printf("%-32s %-9s %s\n", pod->spec.name.c_str(),
                pod_phase_name(pod->status.phase),
                pod->spec.runtime_class.c_str());
  }

  std::printf("\n%zu/%zu pods running, started in %.2f s (virtual)\n",
              cluster.running_count(), cluster.api().pods().size(),
              to_seconds(cluster.startup_makespan()));

  // kubectl top pods, aggregated per runtime class.
  std::map<std::string, std::pair<double, int>> by_class;
  for (const PodMetrics& m : cluster.metrics().top_pods()) {
    const Pod* pod = cluster.api().pod(m.pod_name);
    auto& slot = by_class[pod->spec.runtime_class];
    slot.first += m.working_set.mib();
    slot.second += 1;
  }
  std::printf("\nRUNTIME CLASS     PODS   AVG WORKING SET\n");
  for (const auto& [rc, agg] : by_class) {
    std::printf("%-17s %-6d %.2f MiB\n", rc.c_str(), agg.second,
                agg.first / agg.second);
  }

  const mem::FreeReport free_report =
      cluster.node().memory().free_report();
  std::printf("\nnode: %s used of %s (buff/cache %s)\n",
              format_bytes(free_report.used).c_str(),
              format_bytes(free_report.total).c_str(),
              format_bytes(free_report.buffcache).c_str());
  return cluster.failed_count() == 0 ? 0 : 1;
}
