#include <gtest/gtest.h>

#include "pylite/interp.hpp"
#include "pylite/scripts.hpp"

namespace wasmctr::pylite {
namespace {

/// Parse + run; returns the interpreter for inspection.
struct RunResult {
  Program program;  // must outlive interp (function refs point into it)
  std::unique_ptr<Interp> interp;
  Status status;
};

RunResult run(std::string_view source, InterpOptions opts = {}) {
  RunResult r{.program = {}, .interp = nullptr, .status = Status::ok()};
  auto prog = parse_source(source);
  if (!prog) {
    r.status = prog.status();
    return r;
  }
  r.program = std::move(*prog);
  r.interp = std::make_unique<Interp>(std::move(opts));
  r.status = r.interp->run(r.program);
  return r;
}

int64_t global_int(const RunResult& r, const std::string& name) {
  const PyValue* v = r.interp->global(name);
  EXPECT_NE(v, nullptr) << name;
  const int64_t* i = std::get_if<int64_t>(&v->v);
  EXPECT_NE(i, nullptr) << name << " is not an int";
  return i ? *i : 0;
}

TEST(PyliteTest, ArithmeticAndPrecedence) {
  auto r = run("x = 2 + 3 * 4\ny = (2 + 3) * 4\nz = 2 - -3\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "x"), 14);
  EXPECT_EQ(global_int(r, "y"), 20);
  EXPECT_EQ(global_int(r, "z"), 5);
}

TEST(PyliteTest, PythonDivisionSemantics) {
  auto r = run(
      "a = 7 // 2\n"
      "b = -7 // 2\n"
      "c = 7 % 3\n"
      "d = -7 % 3\n"
      "e = 7 / 2\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "a"), 3);
  EXPECT_EQ(global_int(r, "b"), -4) << "floor division";
  EXPECT_EQ(global_int(r, "c"), 1);
  EXPECT_EQ(global_int(r, "d"), 2) << "modulo takes divisor sign";
  const double* e = std::get_if<double>(&r.interp->global("e")->v);
  ASSERT_NE(e, nullptr) << "true division yields float";
  EXPECT_DOUBLE_EQ(*e, 3.5);
}

TEST(PyliteTest, DivisionByZeroIsError) {
  EXPECT_FALSE(run("x = 1 // 0\n").status.is_ok());
  EXPECT_FALSE(run("x = 1.0 / 0\n").status.is_ok());
  EXPECT_FALSE(run("x = 5 % 0\n").status.is_ok());
}

TEST(PyliteTest, WhileLoopAndAugAssign) {
  auto r = run(
      "total = 0\n"
      "i = 0\n"
      "while i < 10:\n"
      "    total += i\n"
      "    i += 1\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "total"), 45);
}

TEST(PyliteTest, ForRangeAndBreakContinue) {
  auto r = run(
      "evens = 0\n"
      "for i in range(100):\n"
      "    if i >= 10:\n"
      "        break\n"
      "    if i % 2 == 1:\n"
      "        continue\n"
      "    evens += 1\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "evens"), 5);
}

TEST(PyliteTest, RangeVariants) {
  auto r = run(
      "a = len(range(5))\n"
      "b = len(range(2, 8))\n"
      "c = len(range(10, 0, -2))\n"
      "d = range(3, 6)[1]\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "a"), 5);
  EXPECT_EQ(global_int(r, "b"), 6);
  EXPECT_EQ(global_int(r, "c"), 5);
  EXPECT_EQ(global_int(r, "d"), 4);
}

TEST(PyliteTest, IfElifElseChain) {
  const char* script =
      "def grade(x):\n"
      "    if x >= 90:\n"
      "        return 1\n"
      "    elif x >= 50:\n"
      "        return 2\n"
      "    else:\n"
      "        return 3\n"
      "a = grade(95)\n"
      "b = grade(70)\n"
      "c = grade(10)\n";
  auto r = run(script);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "a"), 1);
  EXPECT_EQ(global_int(r, "b"), 2);
  EXPECT_EQ(global_int(r, "c"), 3);
}

TEST(PyliteTest, FunctionsAndRecursion) {
  auto r = run(
      "def fact(n):\n"
      "    if n < 2:\n"
      "        return 1\n"
      "    return n * fact(n - 1)\n"
      "x = fact(10)\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "x"), 3628800);
}

TEST(PyliteTest, FunctionArgCountChecked) {
  EXPECT_FALSE(run("def f(a, b):\n    return a\nx = f(1)\n").status.is_ok());
}

TEST(PyliteTest, ListsShareReferences) {
  auto r = run(
      "a = [1, 2, 3]\n"
      "b = a\n"
      "b.append(4)\n"
      "n = len(a)\n"
      "last = a[3]\n"
      "a[0] = 99\n"
      "first = b[0]\n"
      "neg = a[-1]\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "n"), 4) << "append through alias must be visible";
  EXPECT_EQ(global_int(r, "last"), 4);
  EXPECT_EQ(global_int(r, "first"), 99);
  EXPECT_EQ(global_int(r, "neg"), 4) << "negative indexing";
}

TEST(PyliteTest, ListIndexOutOfRange) {
  EXPECT_FALSE(run("a = [1]\nx = a[5]\n").status.is_ok());
  EXPECT_FALSE(run("a = [1]\na[5] = 2\n").status.is_ok());
}

TEST(PyliteTest, StringOperations) {
  auto r = run(
      "s = \"con\" + \"tainer\"\n"
      "n = len(s)\n"
      "u = s.upper()\n"
      "rep = \"ab\" * 3\n"
      "pre = s.startswith(\"con\")\n"
      "ch = s[0]\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "n"), 9);
  EXPECT_EQ(std::get<std::string>(r.interp->global("u")->v), "CONTAINER");
  EXPECT_EQ(std::get<std::string>(r.interp->global("rep")->v), "ababab");
  EXPECT_TRUE(std::get<bool>(r.interp->global("pre")->v));
  EXPECT_EQ(std::get<std::string>(r.interp->global("ch")->v), "c");
}

TEST(PyliteTest, BuiltinAggregates) {
  auto r = run(
      "xs = [3, 1, 4, 1, 5]\n"
      "s = sum(xs)\n"
      "lo = min(xs)\n"
      "hi = max(xs)\n"
      "m2 = max(2, 7, 1)\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "s"), 14);
  EXPECT_EQ(global_int(r, "lo"), 1);
  EXPECT_EQ(global_int(r, "hi"), 5);
  EXPECT_EQ(global_int(r, "m2"), 7);
}

TEST(PyliteTest, PrintCapturesStdout) {
  auto r = run("print(\"hello\", 42, [1, 2])\nprint(3.5)\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.interp->stdout_data(), "hello 42 [1, 2]\n3.5\n");
}

TEST(PyliteTest, BooleanShortCircuit) {
  auto r = run(
      "def boom():\n"
      "    return 1 // 0\n"
      "a = False and boom()\n"
      "b = True or boom()\n");
  ASSERT_TRUE(r.status.is_ok())
      << "short-circuit must skip the failing call: " << r.status.to_string();
  EXPECT_FALSE(std::get<bool>(r.interp->global("a")->v));
  EXPECT_TRUE(std::get<bool>(r.interp->global("b")->v));
}

TEST(PyliteTest, ComparisonChainsViaAnd) {
  auto r = run("x = 5\nok = 0 < x and x < 10\n");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_TRUE(std::get<bool>(r.interp->global("ok")->v));
}

TEST(PyliteTest, UndefinedNameIsError) {
  auto r = run("x = nope + 1\n");
  ASSERT_FALSE(r.status.is_ok());
  EXPECT_NE(r.status.message().find("not defined"), std::string::npos);
}

TEST(PyliteTest, SyntaxErrors) {
  EXPECT_FALSE(run("x = \n").status.is_ok());
  EXPECT_FALSE(run("if True\n    pass\n").status.is_ok());
  EXPECT_FALSE(run("def f(:\n    pass\n").status.is_ok());
  EXPECT_FALSE(run("x = 'unterminated\n").status.is_ok());
  EXPECT_FALSE(run("while True:\npass\n").status.is_ok())
      << "body must be indented";
}

TEST(PyliteTest, InconsistentIndentRejected) {
  EXPECT_FALSE(run("if True:\n        x = 1\n      y = 2\n").status.is_ok());
}

TEST(PyliteTest, StepBudgetStopsInfiniteLoop) {
  InterpOptions opts;
  opts.max_steps = 10'000;
  auto r = run("while True:\n    pass\n", std::move(opts));
  ASSERT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
}

TEST(PyliteTest, MicroserviceScriptRuns) {
  auto r = run(minimal_microservice_script());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.interp->stdout_data(), "hello from python microservice\n");
  EXPECT_EQ(global_int(r, "checksum"), 2016);  // 0+..+63
}

TEST(PyliteTest, ComputeKernelScriptMatchesShape) {
  auto r = run(compute_kernel_script());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_NE(global_int(r, "result"), 0);
  // Determinism.
  auto r2 = run(compute_kernel_script());
  EXPECT_EQ(global_int(r, "result"), global_int(r2, "result"));
}

TEST(PyliteTest, ResidentBytesGrowsWithData) {
  auto small = run("x = 1\n");
  auto big = run(
      "data = []\n"
      "for i in range(1000):\n"
      "    data.append(i)\n");
  ASSERT_TRUE(small.status.is_ok());
  ASSERT_TRUE(big.status.is_ok());
  EXPECT_GT(big.interp->resident_bytes(),
            small.interp->resident_bytes() + 8000)
      << "1000-element list must show up in the footprint";
}

TEST(PyliteTest, GlobalsVisibleInFunctions) {
  auto r = run(
      "base = 100\n"
      "def add(x):\n"
      "    return base + x\n"
      "y = add(5)\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "y"), 105);
}

TEST(PyliteTest, CommentsAndBlankLinesIgnored) {
  auto r = run(
      "# leading comment\n"
      "\n"
      "x = 1  # trailing comment\n"
      "\n"
      "   \n"
      "y = x + 1\n");
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(global_int(r, "y"), 2);
}

}  // namespace
}  // namespace wasmctr::pylite
