// RangeSet (page-range accounting) unit tests, plus the equivalence
// check the scale refactor hangs on: range-derived process anon totals
// must match the node's scalar accounting bit-for-bit on the paper's
// fig 3 / fig 6 workloads (DESIGN.md §11).
#include "mem/page_range.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "k8s/cluster.hpp"
#include "sim/process.hpp"
#include "support/rng.hpp"

namespace wasmctr::mem {
namespace {

TEST(RangeSetTest, InsertCoalescesOverlapAndAdjacency) {
  RangeSet rs;
  rs.insert(0, 100);
  rs.insert(200, 300);
  EXPECT_EQ(rs.range_count(), 2u);
  EXPECT_EQ(rs.total(), 200u);

  rs.insert(100, 200);  // exactly adjacent on both sides → one range
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.total(), 300u);

  rs.insert(50, 250);  // fully inside: no change
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.total(), 300u);

  rs.insert(250, 500);  // overlapping extension
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.total(), 500u);
  EXPECT_EQ(rs.span_end(), 500u);
}

TEST(RangeSetTest, InsertAbsorbsMultipleRanges) {
  RangeSet rs;
  rs.insert(0, 10);
  rs.insert(20, 30);
  rs.insert(40, 50);
  rs.insert(5, 45);  // swallows the middle range, bridges all three
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.total(), 50u);
}

TEST(RangeSetTest, EmptyInsertIsIgnored) {
  RangeSet rs;
  rs.insert(10, 10);
  rs.insert(20, 5);
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.total(), 0u);
}

TEST(RangeSetTest, EraseSplitsStraddlingRange) {
  RangeSet rs;
  rs.insert(0, 100);
  rs.erase(40, 60);  // punch a hole
  EXPECT_EQ(rs.range_count(), 2u);
  EXPECT_EQ(rs.total(), 80u);
  EXPECT_TRUE(rs.contains(39));
  EXPECT_FALSE(rs.contains(40));
  EXPECT_FALSE(rs.contains(59));
  EXPECT_TRUE(rs.contains(60));

  rs.erase(0, 100);  // erase across both remainders
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.total(), 0u);
}

TEST(RangeSetTest, EraseAcrossRangeBoundaries) {
  RangeSet rs;
  rs.insert(0, 10);
  rs.insert(20, 30);
  rs.insert(40, 50);
  rs.erase(5, 45);  // clips the first and last, removes the middle
  EXPECT_EQ(rs.range_count(), 2u);
  EXPECT_EQ(rs.total(), 10u);
  EXPECT_TRUE(rs.contains(4));
  EXPECT_FALSE(rs.contains(5));
  EXPECT_FALSE(rs.contains(44));
  EXPECT_TRUE(rs.contains(45));
}

TEST(RangeSetTest, EraseTopTrimsLifo) {
  RangeSet rs;
  rs.insert(0, 100);
  rs.insert(200, 300);

  EXPECT_EQ(rs.erase_top(50), 50u);  // partial trim of the top range
  EXPECT_EQ(rs.total(), 150u);
  EXPECT_EQ(rs.span_end(), 250u);

  EXPECT_EQ(rs.erase_top(60), 60u);  // drains [200,250), dips into [0,100)
  EXPECT_EQ(rs.total(), 90u);
  EXPECT_EQ(rs.span_end(), 90u);
  EXPECT_EQ(rs.range_count(), 1u);

  EXPECT_EQ(rs.erase_top(500), 90u);  // over-ask drains and reports short
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.span_end(), 0u);
}

TEST(RangeSetTest, ContainsAndSpanEndOnEmptySet) {
  RangeSet rs;
  EXPECT_FALSE(rs.contains(0));
  EXPECT_EQ(rs.span_end(), 0u);
  EXPECT_EQ(rs.erase_top(10), 0u);
}

// Equivalence on real workloads: deploy the paper's fig 3 (crun-wamr) and
// fig 6 (crun-python) cells, then check that every process's range-derived
// anon() equals what the node's scalar counters say in aggregate, and that
// bump-cursor insertion keeps the per-process VMA view flat (the property
// that makes accounting O(mappings), not O(pages)).
class PageRangeEquivalenceTest
    : public ::testing::TestWithParam<k8s::DeployConfig> {};

TEST_P(PageRangeEquivalenceTest, ProcessRangesMatchScalarNodeTotals) {
  k8s::Cluster cluster;  // single node, lifecycle off → run() quiesces
  ASSERT_TRUE(cluster.deploy(GetParam(), 40, "eq").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.running_count(), 40u);

  sim::Node& node = cluster.node();
  uint64_t range_sum = 0;
  std::size_t max_ranges = 0;
  for (const sim::Pid pid : node.procs().pids()) {
    sim::Process* p = node.procs().find(pid);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->anon().value, p->anon_ranges().total());
    EXPECT_GE(p->rss().value, p->anon().value);
    range_sum += p->anon_ranges().total();
    max_ranges = std::max(max_ranges, p->anon_ranges().range_count());
  }
  // The node's scalar total also carries infra charges made without a
  // Process (kubelet per-pod state, OCI kernel share), so the process
  // ranges account for a strict subset of it.
  EXPECT_GT(range_sum, 0u);
  EXPECT_LE(range_sum, node.memory().anon_total().value);
  // LIFO trims + bump-cursor inserts coalesce: the VMA view stays tiny.
  EXPECT_LE(max_ranges, 2u);
}

// Direct equivalence against scalar bookkeeping: drive a process table
// with a seeded add/remove-anon churn while maintaining the old-style
// scalar shadow counters, and require the range-derived totals to match
// them byte-for-byte at every step.
TEST(PageRangeEquivalenceTest, RandomChurnMatchesScalarShadow) {
  mem::NodeMemory node{Bytes(4ull << 30), Bytes(64ull << 20)};
  sim::ProcessTable procs{node};
  Rng rng(0xCAFE);

  constexpr int kProcs = 16;
  std::vector<sim::Process*> ps;
  std::vector<uint64_t> shadow(kProcs, 0);  // the old scalar per-process anon
  for (int i = 0; i < kProcs; ++i) {
    auto pid = procs.spawn("p" + std::to_string(i), nullptr);
    ASSERT_TRUE(pid.is_ok());
    ps.push_back(procs.find(*pid));
  }

  for (int step = 0; step < 20'000; ++step) {
    const std::size_t i = rng.next_below(kProcs);
    const uint64_t amount = (rng.next_below(64) + 1) * 4096;
    if (rng.next_below(3) != 0) {
      ASSERT_TRUE(ps[i]->add_anon(Bytes(amount)).is_ok());
      shadow[i] += amount;
    } else {
      const uint64_t trim = std::min(shadow[i], amount);
      if (trim > 0) {
        ps[i]->remove_anon(Bytes(trim));
        shadow[i] -= trim;
      }
    }
    ASSERT_EQ(ps[i]->anon().value, shadow[i]) << "step " << step;
  }

  uint64_t total = 0;
  for (int i = 0; i < kProcs; ++i) {
    EXPECT_EQ(ps[i]->anon().value, shadow[i]);
    EXPECT_EQ(ps[i]->anon_ranges().total(), shadow[i]);
    // LIFO-only removal keeps each process's anon view one coalesced VMA.
    EXPECT_LE(ps[i]->anon_ranges().range_count(), 1u);
    total += shadow[i];
  }
  EXPECT_EQ(node.anon_total().value, total);
}

INSTANTIATE_TEST_SUITE_P(Fig3AndFig6, PageRangeEquivalenceTest,
                         ::testing::Values(k8s::DeployConfig::kCrunWamr,
                                           k8s::DeployConfig::kCrunPython),
                         [](const auto& info) {
                           std::string name =
                               k8s::deploy_config_name(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace wasmctr::mem
