// OOM propagation through the OCI layer: a cgroup memory.max breach must
// surface as kResourceExhausted, stop the container with exit code 137
// (SIGKILL), release the workload process, and leave the record removable.
#include <gtest/gtest.h>

#include "oci/runtime.hpp"
#include "pylite/scripts.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::oci {
namespace {

class OomPropagationTest : public ::testing::Test {
 protected:
  void write_wasm_bundle(const std::string& path, uint64_t memory_limit) {
    RuntimeSpec spec;
    spec.args = {"app.wasm"};
    spec.annotations["run.oci.handler"] = "wasm";
    spec.memory_limit = memory_limit;
    Payload payload;
    payload.kind = Payload::Kind::kWasm;
    payload.wasm = wasm::build_minimal_microservice();
    ASSERT_TRUE(write_bundle(node_.fs(), path, spec, payload).is_ok());
  }

  Status start_and_run(LowLevelRuntime& rt, const std::string& id) {
    Status result = internal_error("callback never fired");
    EXPECT_TRUE(
        rt.start(id, [&](Status st) { result = std::move(st); }).is_ok());
    node_.kernel().run();
    return result;
  }

  sim::Node node_;
};

TEST_F(OomPropagationTest, StartupOomStopsContainerWithExit137) {
  // 64 KiB cannot hold any workload: the first charge breaches memory.max.
  write_wasm_bundle("b/oom", 64 * 1024);
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("c1", "b/oom", "pod/c1").is_ok());

  const Status st = start_and_run(crun, "c1");
  EXPECT_EQ(st.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(st.is_retryable_failure());
  EXPECT_FALSE(st.is_transient());

  auto info = crun.state("c1");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->state, ContainerState::kStopped);
  EXPECT_EQ(info->exit_code, kOomKillExitCode);
  EXPECT_EQ(info->pid, 0u) << "the OOM-killed process must be reaped";

  // The stopped container is removable and teardown releases everything.
  ASSERT_TRUE(crun.remove("c1").is_ok());
  EXPECT_EQ(node_.memory().anon_total().value, 0u);
}

TEST_F(OomPropagationTest, RunningContainerOomKilledOnGrowth) {
  // A limit generous enough to start, too small for a later spike.
  write_wasm_bundle("b/grow", 32ull << 20);  // 32 MiB
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("c1", "b/grow", "pod/c1").is_ok());
  ASSERT_TRUE(start_and_run(crun, "c1").is_ok());
  ASSERT_EQ(crun.state("c1")->state, ContainerState::kRunning);

  // A small spike fits...
  EXPECT_TRUE(crun.grow_memory("c1", Bytes(1ull << 20)).is_ok());
  // ... a 64 MiB one breaches the 32 MiB memory.max.
  const Status oom = crun.grow_memory("c1", Bytes(64ull << 20));
  EXPECT_EQ(oom.code(), ErrorCode::kResourceExhausted);

  auto info = crun.state("c1");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->state, ContainerState::kStopped);
  EXPECT_EQ(info->exit_code, kOomKillExitCode);
  EXPECT_EQ(info->pid, 0u);
  ASSERT_TRUE(crun.remove("c1").is_ok());
  EXPECT_EQ(node_.memory().anon_total().value, 0u)
      << "OOM teardown must not leak node memory";
}

TEST_F(OomPropagationTest, GrowWithoutLimitSucceeds) {
  write_wasm_bundle("b/nolimit", 0);
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("c1", "b/nolimit", "pod/c1").is_ok());
  ASSERT_TRUE(start_and_run(crun, "c1").is_ok());
  EXPECT_TRUE(crun.grow_memory("c1", Bytes(256ull << 20)).is_ok());
  EXPECT_EQ(crun.state("c1")->state, ContainerState::kRunning);
}

TEST_F(OomPropagationTest, GrowRequiresRunningContainer) {
  write_wasm_bundle("b/created", 0);
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("c1", "b/created", "pod/c1").is_ok());
  EXPECT_EQ(crun.grow_memory("c1", Bytes(1)).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(crun.grow_memory("ghost", Bytes(1)).code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace wasmctr::oci
