#include "mem/cgroup.hpp"

#include <gtest/gtest.h>

namespace wasmctr::mem {
namespace {

TEST(CgroupTest, ChargesPropagateToAncestors) {
  CgroupTree tree;
  Cgroup& pod = tree.ensure("kubepods/pod1");
  Cgroup& ctr = tree.ensure("kubepods/pod1/ctr");
  ASSERT_TRUE(ctr.charge_anon(Bytes(4096)).is_ok());
  EXPECT_EQ(ctr.usage().value, 4096u);
  EXPECT_EQ(pod.usage().value, 4096u);
  EXPECT_EQ(tree.root().usage().value, 4096u);
  ctr.uncharge_anon(Bytes(4096));
  EXPECT_EQ(tree.root().usage().value, 0u);
}

TEST(CgroupTest, WorkingSetExcludesInactiveFile) {
  CgroupTree tree;
  Cgroup& g = tree.ensure("pod");
  ASSERT_TRUE(g.charge_anon(Bytes(1000)).is_ok());
  ASSERT_TRUE(g.charge_file_active(Bytes(500)).is_ok());
  ASSERT_TRUE(g.charge_file_inactive(Bytes(300)).is_ok());
  EXPECT_EQ(g.usage().value, 1800u);
  EXPECT_EQ(g.working_set().value, 1500u)
      << "metrics server must not count page cache";
}

TEST(CgroupTest, LimitEnforcedAtAncestor) {
  CgroupTree tree;
  Cgroup& pod = tree.ensure("kubepods/pod1");
  Cgroup& ctr = tree.ensure("kubepods/pod1/ctr");
  pod.set_limit(Bytes(8192));
  EXPECT_TRUE(ctr.charge_anon(Bytes(8192)).is_ok());
  auto over = ctr.charge_anon(Bytes(1));
  EXPECT_EQ(over.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(ctr.usage().value, 8192u) << "failed charge must not partially apply";
}

TEST(CgroupTest, ZeroLimitMeansUnlimited) {
  CgroupTree tree;
  Cgroup& g = tree.ensure("g");
  EXPECT_TRUE(g.charge_anon(Bytes(1ull << 40)).is_ok());
}

TEST(CgroupTest, SetLimitClampsWrappedNegativeToUnlimited) {
  CgroupTree tree;
  Cgroup& g = tree.ensure("pod");
  // A base-minus-overhead computation gone negative wraps to a huge
  // unsigned value; the limit must degrade to unlimited instead of
  // poisoning every subsequent headroom check.
  g.set_limit(Bytes(uint64_t{0} - uint64_t{4096}));
  EXPECT_EQ(g.limit().value, 0u);
  EXPECT_TRUE(g.charge_anon(Bytes(1ull << 40)).is_ok());
  g.uncharge_anon(Bytes(1ull << 40));
  // Zero stays the documented "unlimited" encoding.
  g.set_limit(Bytes(0));
  EXPECT_EQ(g.limit().value, 0u);
  // A sane limit still enforces after the clamp.
  g.set_limit(Bytes(4096));
  EXPECT_EQ(g.charge_anon(Bytes(8192)).code(),
            ErrorCode::kResourceExhausted);
}

TEST(CgroupTreeTest, EnsureCreatesAncestors) {
  CgroupTree tree;
  tree.ensure("a/b/c");
  EXPECT_NE(tree.find("a"), nullptr);
  EXPECT_NE(tree.find("a/b"), nullptr);
  EXPECT_NE(tree.find("a/b/c"), nullptr);
  EXPECT_EQ(tree.find("a/b/c")->parent(), tree.find("a/b"));
  EXPECT_EQ(tree.find("a")->parent(), &tree.root());
}

TEST(CgroupTreeTest, EnsureIsIdempotent) {
  CgroupTree tree;
  Cgroup& first = tree.ensure("x/y");
  Cgroup& second = tree.ensure("x/y");
  EXPECT_EQ(&first, &second);
}

TEST(CgroupTreeTest, FindMissingReturnsNull) {
  CgroupTree tree;
  EXPECT_EQ(tree.find("nope"), nullptr);
}

TEST(CgroupTreeTest, RemoveRequiresLeafAndIdle) {
  CgroupTree tree;
  tree.ensure("a/b");
  EXPECT_EQ(tree.remove("a").code(), ErrorCode::kFailedPrecondition)
      << "non-leaf removal must fail";
  Cgroup& b = tree.ensure("a/b");
  ASSERT_TRUE(b.charge_anon(Bytes(10)).is_ok());
  EXPECT_EQ(tree.remove("a/b").code(), ErrorCode::kFailedPrecondition)
      << "busy cgroup removal must fail";
  b.uncharge_anon(Bytes(10));
  EXPECT_TRUE(tree.remove("a/b").is_ok());
  EXPECT_TRUE(tree.remove("a").is_ok());
  EXPECT_EQ(tree.remove("a").code(), ErrorCode::kNotFound);
}

TEST(CgroupTreeTest, SiblingPrefixIsNotAChild) {
  CgroupTree tree;
  tree.ensure("pod1");
  tree.ensure("pod10");  // shares the "pod1" prefix but is a sibling
  EXPECT_TRUE(tree.remove("pod1").is_ok());
}

TEST(CgroupTreeTest, PathsSorted) {
  CgroupTree tree;
  tree.ensure("b");
  tree.ensure("a/x");
  auto paths = tree.paths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "a");
  EXPECT_EQ(paths[1], "a/x");
  EXPECT_EQ(paths[2], "b");
}

}  // namespace
}  // namespace wasmctr::mem
