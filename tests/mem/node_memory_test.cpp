#include "mem/node_memory.hpp"

#include <gtest/gtest.h>

namespace wasmctr::mem {
namespace {

constexpr Bytes kRam{256ull * 1024 * 1024 * 1024};
constexpr Bytes kBase{2ull * 1024 * 1024 * 1024};

TEST(NodeMemoryTest, BaselineFreeReport) {
  NodeMemory node(kRam, kBase);
  const FreeReport r = node.free_report();
  EXPECT_EQ(r.total, kRam);
  EXPECT_EQ(r.used, kBase);
  EXPECT_EQ(r.buffcache.value, 0u);
  EXPECT_EQ(r.free_mem, kRam - kBase);
}

TEST(NodeMemoryTest, AnonChargesUsed) {
  NodeMemory node(kRam, kBase);
  ASSERT_TRUE(node.charge_anon(Bytes(1_MiB), nullptr).is_ok());
  EXPECT_EQ(node.free_report().used, kBase + Bytes(1_MiB));
  node.uncharge_anon(Bytes(1_MiB), nullptr);
  EXPECT_EQ(node.free_report().used, kBase);
}

TEST(NodeMemoryTest, SharedMappingResidentOnce) {
  NodeMemory node(kRam, kBase);
  const FileId so = node.new_file_id();
  ASSERT_TRUE(node.map_shared(so, Bytes(2_MiB), nullptr).is_ok());
  ASSERT_TRUE(node.map_shared(so, Bytes(2_MiB), nullptr).is_ok());
  ASSERT_TRUE(node.map_shared(so, Bytes(2_MiB), nullptr).is_ok());
  EXPECT_EQ(node.shared_resident().value, 2_MiB)
      << "three mappers, one physical copy";
  EXPECT_EQ(node.shared_mappers(so), 3u);
  node.unmap_shared(so);
  node.unmap_shared(so);
  EXPECT_EQ(node.shared_resident().value, 2_MiB);
  node.unmap_shared(so);
  EXPECT_EQ(node.shared_resident().value, 0u);
}

TEST(NodeMemoryTest, FirstToucherCgroupCharged) {
  NodeMemory node(kRam, kBase);
  CgroupTree tree;
  Cgroup& pod1 = tree.ensure("pod1");
  Cgroup& pod2 = tree.ensure("pod2");
  const FileId so = node.new_file_id();
  ASSERT_TRUE(node.map_shared(so, Bytes(1_MiB), &pod1).is_ok());
  ASSERT_TRUE(node.map_shared(so, Bytes(1_MiB), &pod2).is_ok());
  EXPECT_EQ(pod1.working_set().value, 1_MiB);
  EXPECT_EQ(pod2.working_set().value, 0u)
      << "memcg charges shared pages to the first toucher only";
  node.unmap_shared(so);
  node.unmap_shared(so);
  EXPECT_EQ(pod1.working_set().value, 0u);
}

TEST(NodeMemoryTest, PageCacheShowsInBuffcacheNotUsed) {
  NodeMemory node(kRam, kBase);
  const FileId img = node.new_file_id();
  ASSERT_TRUE(node.cache_file(img, Bytes(10_MiB), nullptr).is_ok());
  const FreeReport r = node.free_report();
  EXPECT_EQ(r.buffcache.value, 10_MiB);
  EXPECT_EQ(r.used, kBase);
  EXPECT_EQ(r.available, r.free_mem + r.buffcache);
  node.uncache_file(img);
  EXPECT_EQ(node.free_report().buffcache.value, 0u);
}

TEST(NodeMemoryTest, PageCacheRefcounted) {
  NodeMemory node(kRam, kBase);
  const FileId img = node.new_file_id();
  ASSERT_TRUE(node.cache_file(img, Bytes(4_MiB), nullptr).is_ok());
  ASSERT_TRUE(node.cache_file(img, Bytes(4_MiB), nullptr).is_ok());
  EXPECT_EQ(node.page_cache().value, 4_MiB);
  node.uncache_file(img);
  EXPECT_EQ(node.page_cache().value, 4_MiB);
  node.uncache_file(img);
  EXPECT_EQ(node.page_cache().value, 0u);
}

TEST(NodeMemoryTest, CacheChargedAsInactiveFile) {
  NodeMemory node(kRam, kBase);
  CgroupTree tree;
  Cgroup& pod = tree.ensure("pod");
  const FileId img = node.new_file_id();
  ASSERT_TRUE(node.cache_file(img, Bytes(6_MiB), &pod).is_ok());
  EXPECT_EQ(pod.usage().value, 6_MiB);
  EXPECT_EQ(pod.working_set().value, 0u);
}

TEST(NodeMemoryTest, PhysicalExhaustionRejected) {
  NodeMemory node(Bytes(10_MiB), Bytes(1_MiB));
  EXPECT_TRUE(node.charge_anon(Bytes(9_MiB), nullptr).is_ok());
  EXPECT_EQ(node.charge_anon(Bytes(1), nullptr).code(),
            ErrorCode::kResourceExhausted);
  const FileId f = node.new_file_id();
  EXPECT_EQ(node.map_shared(f, Bytes(1_MiB), nullptr).code(),
            ErrorCode::kResourceExhausted);
}

TEST(NodeMemoryTest, MappingKindsPartitionSharedAndCacheResidency) {
  NodeMemory node(kRam, kBase);
  const FileId code = node.new_file_id();
  const FileId lib = node.new_file_id();
  const FileId img = node.new_file_id();
  node.register_file_kind(code, MappingKind::kWasmCode);
  node.register_file_kind(lib, MappingKind::kLib);
  node.register_file_kind(img, MappingKind::kImage);
  ASSERT_TRUE(node.map_shared(code, Bytes(2_MiB), nullptr).is_ok());
  ASSERT_TRUE(node.map_shared(lib, Bytes(8_MiB), nullptr).is_ok());
  ASSERT_TRUE(node.map_shared(lib, Bytes(8_MiB), nullptr).is_ok());  // ref 2
  ASSERT_TRUE(node.cache_file(img, Bytes(4_MiB), nullptr).is_ok());

  EXPECT_EQ(node.shared_by_kind(MappingKind::kWasmCode).value, 2_MiB);
  EXPECT_EQ(node.shared_by_kind(MappingKind::kLib).value, 8_MiB)
      << "second mapper shares the same pages";
  EXPECT_EQ(node.cache_by_kind(MappingKind::kImage).value, 4_MiB);
  // Unregistered files attribute to kOther.
  const FileId anon_file = node.new_file_id();
  ASSERT_TRUE(node.map_shared(anon_file, Bytes(1_MiB), nullptr).is_ok());
  EXPECT_EQ(node.file_kind(anon_file), MappingKind::kOther);
  EXPECT_EQ(node.shared_by_kind(MappingKind::kOther).value, 1_MiB);

  // The kinds partition shared_resident() exactly.
  Bytes sum{0};
  for (std::size_t k = 0; k < kMappingKindCount; ++k) {
    sum += node.shared_by_kind(static_cast<MappingKind>(k));
  }
  EXPECT_EQ(sum.value, node.shared_resident().value);

  node.unmap_shared(lib);
  node.unmap_shared(lib);  // last ref releases the kind total too
  EXPECT_EQ(node.shared_by_kind(MappingKind::kLib).value, 0u);
}

TEST(NodeMemoryTest, CgroupLimitBlocksNodeCharge) {
  NodeMemory node(kRam, kBase);
  CgroupTree tree;
  Cgroup& pod = tree.ensure("pod");
  pod.set_limit(Bytes(1_MiB));
  EXPECT_FALSE(node.charge_anon(Bytes(2_MiB), &pod).is_ok());
  EXPECT_EQ(node.anon_total().value, 0u)
      << "node accounting must not leak on cgroup rejection";
}

}  // namespace
}  // namespace wasmctr::mem
