#include "support/leb128.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wasmctr::leb128 {
namespace {

template <typename T, typename Enc, typename Dec>
void roundtrip(T value, Enc enc, Dec dec) {
  std::vector<uint8_t> buf;
  enc(value, buf);
  auto d = dec(buf);
  ASSERT_TRUE(d.is_ok()) << d.status().to_string();
  EXPECT_EQ(d->value, value);
  EXPECT_EQ(d->length, buf.size());
}

TEST(Leb128Test, U32RoundtripBoundaries) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 624485u,
                     std::numeric_limits<uint32_t>::max()}) {
    roundtrip(v, encode_u32, decode_u32);
  }
}

TEST(Leb128Test, U64RoundtripBoundaries) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 35, std::numeric_limits<uint64_t>::max()}) {
    roundtrip(v, encode_u64, decode_u64);
  }
}

TEST(Leb128Test, S32RoundtripBoundaries) {
  for (int32_t v : {0, 1, -1, 63, 64, -64, -65, 8191, -8192,
                    std::numeric_limits<int32_t>::min(),
                    std::numeric_limits<int32_t>::max()}) {
    roundtrip(v, encode_s32, decode_s32);
  }
}

TEST(Leb128Test, S64RoundtripBoundaries) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1} << 40,
                    -(int64_t{1} << 40), std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    roundtrip(v, encode_s64, decode_s64);
  }
}

// Property sweep: every value in a dense window must round-trip.
class Leb128Sweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(Leb128Sweep, SignedRoundtripWindow) {
  const int64_t base = GetParam();
  for (int64_t v = base - 64; v <= base + 64; ++v) {
    roundtrip(v, encode_s64, decode_s64);
    if (v >= std::numeric_limits<int32_t>::min() &&
        v <= std::numeric_limits<int32_t>::max()) {
      roundtrip(static_cast<int32_t>(v), encode_s32, decode_s32);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, Leb128Sweep,
                         ::testing::Values(0, 127, 128, 16384, -16384,
                                           1 << 21, -(1 << 21), 1LL << 42));

TEST(Leb128Test, EmptyInputIsMalformed) {
  EXPECT_EQ(decode_u32({}).status().code(), ErrorCode::kMalformed);
  EXPECT_EQ(decode_s64({}).status().code(), ErrorCode::kMalformed);
}

TEST(Leb128Test, TruncatedMultibyteIsMalformed) {
  const uint8_t bytes[] = {0x80, 0x80};  // continuation with no terminator
  EXPECT_FALSE(decode_u32(bytes).is_ok());
}

TEST(Leb128Test, OverlongU32Rejected) {
  // 6 bytes for u32 (max is 5).
  const uint8_t bytes[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  EXPECT_EQ(decode_u32(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(Leb128Test, U32ExtraBitsRejected) {
  // Last byte contributes bits ≥ 2^32.
  const uint8_t bytes[] = {0xff, 0xff, 0xff, 0xff, 0x1f};
  EXPECT_EQ(decode_u32(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(Leb128Test, U32MaxBitsAccepted) {
  const uint8_t bytes[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
  auto d = decode_u32(bytes);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->value, std::numeric_limits<uint32_t>::max());
}

TEST(Leb128Test, S32BadSignExtensionRejected) {
  // Per spec test suite: 0xff ff ff ff 0f is malformed for s32 (unused bits
  // must sign-extend).
  const uint8_t bytes[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
  EXPECT_EQ(decode_s32(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(Leb128Test, S32ProperSignExtensionAccepted) {
  const uint8_t minus_one[] = {0xff, 0xff, 0xff, 0xff, 0x7f};
  auto d = decode_s32(minus_one);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->value, -1);
}

TEST(Leb128Test, NonCanonicalButValidAccepted) {
  // 1 encoded in 2 bytes: legal per the Wasm spec (only over-length and
  // bad high bits are malformed).
  const uint8_t bytes[] = {0x81, 0x00};
  auto d = decode_u32(bytes);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->value, 1u);
  EXPECT_EQ(d->length, 2u);
}

TEST(Leb128Test, EncodedSizeMatchesEncoding) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 0xffffffffu}) {
    std::vector<uint8_t> buf;
    encode_u32(v, buf);
    EXPECT_EQ(encoded_size_u32(v), buf.size()) << v;
  }
}

TEST(Leb128Test, DecodeStopsAtTerminator) {
  // Trailing garbage after a complete encoding is not consumed.
  const uint8_t bytes[] = {0x2a, 0xde, 0xad};
  auto d = decode_u32(bytes);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->value, 42u);
  EXPECT_EQ(d->length, 1u);
}

}  // namespace
}  // namespace wasmctr::leb128
