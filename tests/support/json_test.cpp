#include "support/json.hpp"

#include <gtest/gtest.h>

namespace wasmctr::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_EQ(parse("42")->as_i64(), 42);
  EXPECT_EQ(parse("-7")->as_i64(), -7);
  EXPECT_DOUBLE_EQ(parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, Int64Exactness) {
  auto v = parse("9007199254740993");  // 2^53 + 1: not double-representable
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v->as_i64(), 9007199254740993LL);
}

TEST(JsonParseTest, NestedDocument) {
  auto v = parse(R"({
    "ociVersion": "1.0.2",
    "process": {"args": ["app.wasm", "--port", "8080"], "terminal": false},
    "linux": {"resources": {"memory": {"limit": 134217728}}}
  })");
  ASSERT_TRUE(v.is_ok()) << v.status().to_string();
  const Value* process = v->find("process");
  ASSERT_NE(process, nullptr);
  EXPECT_EQ(process->find("args")->as_array().size(), 3u);
  EXPECT_EQ(process->find("args")->as_array()[0].as_string(), "app.wasm");
  EXPECT_EQ(v->find("linux")->find("resources")->find("memory")->get_i64(
                "limit"),
            134217728);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = parse(R"("a\"b\\c\/d\n\tAé")");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParseTest, SurrogatePairs) {
  auto v = parse(R"("😀")");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, UnpairedSurrogateRejected) {
  EXPECT_FALSE(parse(R"("\ud83d")").is_ok());
  EXPECT_FALSE(parse(R"("\udc00")").is_ok());
}

struct BadCase {
  const char* name;
  const char* text;
};

class JsonBadInput : public ::testing::TestWithParam<BadCase> {};

TEST_P(JsonBadInput, Rejected) {
  auto v = parse(GetParam().text);
  EXPECT_FALSE(v.is_ok()) << GetParam().text;
  EXPECT_EQ(v.status().code(), ErrorCode::kMalformed);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonBadInput,
    ::testing::Values(
        BadCase{"empty", ""}, BadCase{"bare_word", "nul"},
        BadCase{"trailing", "1 2"}, BadCase{"unterminated_str", "\"abc"},
        BadCase{"unterminated_obj", "{\"a\":1"},
        BadCase{"unterminated_arr", "[1,2"},
        BadCase{"missing_colon", "{\"a\" 1}"},
        BadCase{"trailing_comma_obj", "{\"a\":1,}"},
        BadCase{"trailing_comma_arr", "[1,]"},
        BadCase{"leading_zero", "01"}, BadCase{"bad_escape", "\"\\x\""},
        BadCase{"lone_minus", "-"}, BadCase{"bad_fraction", "1."},
        BadCase{"bad_exponent", "1e"},
        BadCase{"control_char", "\"a\x01b\""},
        BadCase{"non_string_key", "{1:2}"}),
    [](const auto& info) { return info.param.name; });

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse(deep).is_ok()) << "must reject >128 nesting levels";
}

TEST(JsonParseTest, ErrorsCarryPosition) {
  auto v = parse("{\n  \"a\": bogus\n}");
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("line 2"), std::string::npos)
      << v.status().message();
}

TEST(JsonDumpTest, RoundtripCompact) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-9})";
  auto v = parse(text);
  ASSERT_TRUE(v.is_ok());
  auto again = parse(v->dump());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*v, *again);
}

TEST(JsonDumpTest, PrettyPrintIsReparseable) {
  Value v = Object{{"args", Array{"a.wasm", "--env"}},
                   {"memLimit", int64_t{1} << 31},
                   {"wasm", true}};
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = parse(pretty);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(v, *again);
}

TEST(JsonDumpTest, DeterministicKeyOrder) {
  Value a = Object{{"z", 1}, {"a", 2}};
  Value b = Object{{"a", 2}, {"z", 1}};
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(JsonValueTest, TypedLookupsWithDefaults) {
  auto v = parse(R"({"name":"pod-1","replicas":3,"wasm":true})");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v->get_string("name"), "pod-1");
  EXPECT_EQ(v->get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v->get_i64("replicas"), 3);
  EXPECT_EQ(v->get_i64("missing", -1), -1);
  EXPECT_TRUE(v->get_bool("wasm"));
  EXPECT_TRUE(v->get_bool("missing", true));
  // Type mismatches fall back rather than assert.
  EXPECT_EQ(v->get_i64("name", 5), 5);
}

TEST(JsonValueTest, SetBuildsObjects) {
  Value v;
  v.set("kind", "Pod").set("count", 2);
  EXPECT_EQ(v.get_string("kind"), "Pod");
  EXPECT_EQ(v.get_i64("count"), 2);
}

TEST(JsonValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(*parse("1"), *parse("1.0"));
}

}  // namespace
}  // namespace wasmctr::json
