#include "support/byteio.hpp"

#include <gtest/gtest.h>

namespace wasmctr {
namespace {

TEST(ByteReaderTest, SequentialReads) {
  const uint8_t bytes[] = {0x01, 0x02, 0x03, 0x04, 0x05};
  ByteReader r(bytes);
  EXPECT_EQ(r.remaining(), 5u);
  EXPECT_EQ(*r.u8(), 0x01);
  EXPECT_EQ(*r.peek(), 0x02);
  EXPECT_EQ(*r.u8(), 0x02);
  auto raw = r.bytes(3);
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ((*raw)[0], 0x03);
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.u8().is_ok());
}

TEST(ByteReaderTest, FixedWidthLittleEndian) {
  const uint8_t bytes[] = {0x78, 0x56, 0x34, 0x12,
                           0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01};
  ByteReader r(bytes);
  EXPECT_EQ(*r.fixed_u32(), 0x12345678u);
  EXPECT_EQ(*r.fixed_u64(), 0x0123456789abcdefull);
}

TEST(ByteReaderTest, FixedWidthOverrun) {
  const uint8_t bytes[] = {0x01, 0x02};
  ByteReader r(bytes);
  EXPECT_FALSE(r.fixed_u32().is_ok());
  EXPECT_EQ(r.pos(), 0u) << "cursor must not advance on failure";
}

TEST(ByteReaderTest, VarIntsAdvanceCursor) {
  ByteWriter w;
  w.var_u32(624485);
  w.var_s32(-12345);
  w.var_u64(1ull << 60);
  w.var_s64(-(1ll << 50));
  ByteReader r(w.data());
  EXPECT_EQ(*r.var_u32(), 624485u);
  EXPECT_EQ(*r.var_s32(), -12345);
  EXPECT_EQ(*r.var_u64(), 1ull << 60);
  EXPECT_EQ(*r.var_s64(), -(1ll << 50));
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReaderTest, NameRoundtrip) {
  ByteWriter w;
  w.name("wasi_snapshot_preview1");
  ByteReader r(w.data());
  auto n = r.name();
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, "wasi_snapshot_preview1");
}

TEST(ByteReaderTest, NameRejectsInvalidUtf8) {
  ByteWriter w;
  w.var_u32(2);
  w.u8(0xc0);  // over-long encoding lead byte
  w.u8(0xaf);
  ByteReader r(w.data());
  EXPECT_EQ(r.name().status().code(), ErrorCode::kMalformed);
}

TEST(ByteReaderTest, NameRejectsTruncation) {
  ByteWriter w;
  w.var_u32(10);
  w.u8('a');
  ByteReader r(w.data());
  EXPECT_FALSE(r.name().is_ok());
}

TEST(ByteReaderTest, SubReaderIsolatesWindow) {
  const uint8_t bytes[] = {0xaa, 0xbb, 0xcc, 0xdd};
  ByteReader r(bytes);
  ASSERT_TRUE(r.skip(1).is_ok());
  auto sub = r.sub_reader(2);
  ASSERT_TRUE(sub.is_ok());
  EXPECT_EQ(*sub->u8(), 0xbb);
  EXPECT_EQ(*sub->u8(), 0xcc);
  EXPECT_TRUE(sub->at_end());
  EXPECT_EQ(*r.u8(), 0xdd) << "outer cursor sits after the window";
}

TEST(ByteWriterTest, LengthPrefixedEmbedsBlob) {
  ByteWriter inner;
  inner.u8(0x01);
  inner.u8(0x02);
  ByteWriter outer;
  outer.length_prefixed(inner);
  ByteReader r(outer.data());
  EXPECT_EQ(*r.var_u32(), 2u);
  EXPECT_EQ(*r.u8(), 0x01);
  EXPECT_EQ(*r.u8(), 0x02);
}

TEST(Utf8Test, AcceptsMultibyteSequences) {
  const std::string s = "héllo \xe4\xb8\x96\xe7\x95\x8c \xf0\x9f\x98\x80";
  EXPECT_TRUE(is_valid_utf8(
      {reinterpret_cast<const uint8_t*>(s.data()), s.size()}));
}

TEST(Utf8Test, RejectsSurrogatesAndOverlong) {
  const uint8_t surrogate[] = {0xed, 0xa0, 0x80};      // U+D800
  const uint8_t overlong[] = {0xc0, 0x80};             // over-long NUL
  const uint8_t out_of_range[] = {0xf4, 0x90, 0x80, 0x80};  // > U+10FFFF
  const uint8_t bare_cont[] = {0x80};
  EXPECT_FALSE(is_valid_utf8(surrogate));
  EXPECT_FALSE(is_valid_utf8(overlong));
  EXPECT_FALSE(is_valid_utf8(out_of_range));
  EXPECT_FALSE(is_valid_utf8(bare_cont));
}

}  // namespace
}  // namespace wasmctr
