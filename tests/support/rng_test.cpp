#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wasmctr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsOrderIndependent) {
  Rng master(7);
  Rng a1 = master.fork("kubelet");
  Rng b1 = master.fork("containerd");
  Rng master2(7);
  Rng b2 = master2.fork("containerd");
  Rng a2 = master2.fork("kubelet");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  EXPECT_EQ(b1.next_u64(), b2.next_u64());
}

TEST(RngTest, ForkStreamsAreDistinct) {
  Rng master(7);
  Rng a = master.fork("a");
  Rng b = master.fork("b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(5);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(RngTest, UniformCoversRange) {
  Rng r(12);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 2000; ++i) {
    const double v = r.uniform(2.0, 8.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 8.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 2.5) << "samples should approach the lower edge";
  EXPECT_GT(hi, 7.5) << "samples should approach the upper edge";
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng r(2024);
  const int n = 20000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

}  // namespace
}  // namespace wasmctr
