#include "support/status.hpp"

#include <gtest/gtest.h>

namespace wasmctr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = malformed("bad magic");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kMalformed);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.to_string(), "malformed: bad magic");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(invalid_argument("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(malformed("").code(), ErrorCode::kMalformed);
  EXPECT_EQ(validation_error("").code(), ErrorCode::kValidation);
  EXPECT_EQ(not_found("").code(), ErrorCode::kNotFound);
  EXPECT_EQ(already_exists("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(failed_precondition("").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(resource_exhausted("").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(unimplemented("").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(internal_error("").code(), ErrorCode::kInternal);
  EXPECT_EQ(trap_error("").code(), ErrorCode::kTrap);
  EXPECT_EQ(permission_denied("").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(unavailable("").code(), ErrorCode::kUnavailable);
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kUnavailable); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(StatusTest, TransientClassification) {
  // Only kUnavailable is transient: the identical call may succeed on a
  // plain retry. Everything else needs state to change first.
  EXPECT_TRUE(is_transient_code(ErrorCode::kUnavailable));
  EXPECT_TRUE(unavailable("shim died").is_transient());
  for (const ErrorCode c :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kMalformed,
        ErrorCode::kValidation, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kFailedPrecondition,
        ErrorCode::kResourceExhausted, ErrorCode::kUnimplemented,
        ErrorCode::kInternal, ErrorCode::kTrap,
        ErrorCode::kPermissionDenied}) {
    EXPECT_FALSE(is_transient_code(c)) << error_code_name(c);
  }
}

TEST(StatusTest, RetryableFailureClassification) {
  // The crash-loop restart set: transient errors plus workload deaths
  // (OOM kill, trap, engine-internal crash).
  for (const ErrorCode c : {ErrorCode::kUnavailable,
                            ErrorCode::kResourceExhausted, ErrorCode::kTrap,
                            ErrorCode::kInternal}) {
    EXPECT_TRUE(is_retryable_failure_code(c)) << error_code_name(c);
  }
  // Config/spec errors can never succeed on retry.
  for (const ErrorCode c :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kMalformed,
        ErrorCode::kValidation, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kFailedPrecondition,
        ErrorCode::kUnimplemented, ErrorCode::kPermissionDenied}) {
    EXPECT_FALSE(is_retryable_failure_code(c)) << error_code_name(c);
  }
  EXPECT_TRUE(resource_exhausted("oom").is_retryable_failure());
  EXPECT_FALSE(resource_exhausted("oom").is_transient());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = not_found("x");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 5;
  EXPECT_EQ(r.value_or(9), 5);
}

Status fails() { return malformed("inner"); }
Status propagates() {
  WASMCTR_RETURN_IF_ERROR(fails());
  return internal_error("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(propagates().code(), ErrorCode::kMalformed);
}

Result<int> half(int v) {
  if (v % 2 != 0) return invalid_argument("odd");
  return v / 2;
}
Result<int> quarter(int v) {
  WASMCTR_ASSIGN_OR_RETURN(int h, half(v));
  return half(h);
}

TEST(StatusTest, AssignOrReturnPropagates) {
  auto ok = quarter(8);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 2);
  auto bad = quarter(6);  // 6/2 = 3 → odd
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace wasmctr
