#include "support/units.hpp"

#include <gtest/gtest.h>

namespace wasmctr {
namespace {

TEST(UnitsTest, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(BytesTest, Conversions) {
  const Bytes b = Bytes::from_mib(1.5);
  EXPECT_DOUBLE_EQ(b.mib(), 1.5);
  EXPECT_DOUBLE_EQ(b.kib(), 1536.0);
  EXPECT_EQ(Bytes::from_kib(4).value, 4096u);
  EXPECT_EQ(Bytes::from_pages(3).value, 3 * kPageSize);
}

TEST(BytesTest, PageRoundingUp) {
  EXPECT_EQ(Bytes(0).pages(), 0u);
  EXPECT_EQ(Bytes(1).pages(), 1u);
  EXPECT_EQ(Bytes(kPageSize).pages(), 1u);
  EXPECT_EQ(Bytes(kPageSize + 1).pages(), 2u);
}

TEST(BytesTest, Arithmetic) {
  Bytes a(1000);
  Bytes b(24);
  EXPECT_EQ((a + b).value, 1024u);
  EXPECT_EQ((a - b).value, 976u);
  EXPECT_EQ((b * 3).value, 72u);
  EXPECT_EQ((a / 10).value, 100u);
  a += b;
  EXPECT_EQ(a.value, 1024u);
  a -= b;
  EXPECT_EQ(a.value, 1000u);
  EXPECT_LT(b, a);
}

TEST(BytesTest, Formatting) {
  EXPECT_EQ(format_bytes(Bytes(512)), "512 B");
  EXPECT_EQ(format_bytes(Bytes(1536)), "1.50 KiB");
  EXPECT_EQ(format_bytes(Bytes::from_mib(12.34)), "12.34 MiB");
  EXPECT_EQ(format_bytes(Bytes(3ull * 1024 * 1024 * 1024)), "3.00 GiB");
}

TEST(SimTimeTest, Constructors) {
  EXPECT_EQ(sim_us(5).count(), 5000);
  EXPECT_EQ(sim_ms(int64_t{3}).count(), 3'000'000);
  EXPECT_EQ(sim_ms(1.5).count(), 1'500'000);
  EXPECT_EQ(sim_s(2.0).count(), 2'000'000'000);
}

TEST(SimTimeTest, Reporting) {
  EXPECT_DOUBLE_EQ(to_seconds(sim_s(3.24)), 3.24);
  EXPECT_DOUBLE_EQ(to_millis(sim_ms(int64_t{250})), 250.0);
}

}  // namespace
}  // namespace wasmctr
