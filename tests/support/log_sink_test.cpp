// Pluggable log sink + RAII capture tests.
#include <gtest/gtest.h>

#include "support/log.hpp"

namespace wasmctr {
namespace {

TEST(LogSinkTest, SetSinkReceivesFilteredLines) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kInfo);
  std::vector<std::string> seen;
  Log::set_sink([&seen](LogLevel, std::string_view component,
                        std::string_view message) {
    seen.push_back(std::string(component) + ": " + std::string(message));
  });
  WASMCTR_LOG(kInfo, "kubelet") << "pod " << 7 << " started";
  WASMCTR_LOG(kDebug, "kubelet") << "below the level filter";
  Log::set_sink(nullptr);  // restore stderr default
  Log::set_level(saved);
  WASMCTR_LOG(kError, "kubelet") << "after restore";  // must not hit `seen`

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "kubelet: pod 7 started");
}

TEST(LogSinkTest, LogCaptureCollectsAndRestores) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kWarn);
  {
    LogCapture capture(LogLevel::kDebug);
    EXPECT_EQ(Log::level(), LogLevel::kDebug)
        << "capture lowers the level for its lifetime";
    WASMCTR_LOG(kDebug, "oci") << "bundle written";
    WASMCTR_LOG(kWarn, "oci") << "slow exec";
    WASMCTR_LOG(kTrace, "oci") << "below capture level";
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0], "[DEBUG] oci: bundle written");
    EXPECT_EQ(capture.lines()[1], "[WARN] oci: slow exec");
    EXPECT_EQ(capture.count_containing("oci"), 2u);
    EXPECT_EQ(capture.count_containing("slow"), 1u);
    EXPECT_EQ(capture.count_containing("missing"), 0u);
    capture.clear();
    EXPECT_TRUE(capture.lines().empty());
  }
  EXPECT_EQ(Log::level(), LogLevel::kWarn) << "destructor restores level";
  Log::set_level(saved);
}

TEST(LogSinkTest, NestedCapturesRestoreInOrder) {
  const LogLevel saved = Log::level();
  LogCapture outer(LogLevel::kInfo);
  {
    LogCapture inner(LogLevel::kTrace);
    WASMCTR_LOG(kInfo, "sim") << "seen by inner only";
    EXPECT_EQ(inner.count_containing("inner only"), 1u);
    EXPECT_EQ(outer.count_containing("inner only"), 0u);
  }
  WASMCTR_LOG(kInfo, "sim") << "back to outer";
  EXPECT_EQ(outer.count_containing("back to outer"), 1u);
  Log::set_level(saved);
}

TEST(LogSinkTest, ErrorCountResets) {
  LogCapture quiet;  // keep the error line off the test's stderr
  WASMCTR_LOG(kError, "test") << "boom";
  EXPECT_GE(Log::error_count(), 1u);
  Log::reset_error_count();
  EXPECT_EQ(Log::error_count(), 0u);
  WASMCTR_LOG(kError, "test") << "boom again";
  EXPECT_EQ(Log::error_count(), 1u);
  Log::reset_error_count();
}

}  // namespace
}  // namespace wasmctr
