#include "containerd/containerd.hpp"

#include <gtest/gtest.h>

#include "wasm/workloads.hpp"

namespace wasmctr::containerd {
namespace {

class ContainerdTest : public ::testing::Test {
 protected:
  ContainerdTest() : images_(node_), ctrd_(node_, images_) {
    Image wasm_image;
    wasm_image.name = "svc:wasm";
    wasm_image.payload.kind = oci::Payload::Kind::kWasm;
    wasm_image.payload.wasm = wasm::build_minimal_microservice();
    wasm_image.disk_size = Bytes(8192);
    images_.add(std::move(wasm_image));

    ctrd_.register_handler(
        "crun-wamr", {HandlerPath::kRuncV2, "crun", engines::EngineKind::kWamr});
    ctrd_.register_handler(
        "wasmtime-shim",
        {HandlerPath::kRunwasi, "", engines::EngineKind::kWasmtime});
  }

  Result<std::string> make_sandbox(const std::string& pod) {
    Result<std::string> out = internal_error("no callback");
    ctrd_.run_pod_sandbox(pod, [&](Result<std::string> r) { out = std::move(r); });
    node_.kernel().run();
    return out;
  }

  sim::Node node_;
  ImageStore images_;
  Containerd ctrd_;
};

TEST_F(ContainerdTest, SandboxCreatesPauseAndCgroup) {
  auto sb = make_sandbox("pod-a");
  ASSERT_TRUE(sb.is_ok()) << sb.status().to_string();
  auto info = ctrd_.sandbox(*sb);
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ((*info)->pod_name, "pod-a");
  EXPECT_NE((*info)->pause_pid, 0u);
  mem::Cgroup* cg = node_.cgroups().find("kubepods/pod-pod-a");
  ASSERT_NE(cg, nullptr);
  EXPECT_GE(cg->working_set().value, 300u * 1024)
      << "pause container private memory charged to the pod cgroup";
}

TEST_F(ContainerdTest, RuncV2PathRunsContainer) {
  auto sb = make_sandbox("pod-a");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  Status running = internal_error("no callback");
  auto cid = ctrd_.create_and_start(*sb, req, "crun-wamr",
                                    [&](Status st) { running = std::move(st); });
  ASSERT_TRUE(cid.is_ok()) << cid.status().to_string();
  node_.kernel().run();
  ASSERT_TRUE(running.is_ok()) << running.to_string();
  auto state = ctrd_.container_state(*cid);
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state->state, oci::ContainerState::kRunning);
  EXPECT_EQ(state->stdout_data, "hello from wasm microservice\n");
  // One shim-runc-v2 process exists, outside pod cgroups: the node's anon
  // grew by more than the pod cgroup.
  mem::Cgroup* cg = node_.cgroups().find("kubepods/pod-pod-a");
  EXPECT_GT(node_.memory().anon_total(), cg->anon());
}

TEST_F(ContainerdTest, RunwasiPathRunsInPodCgroup) {
  auto sb = make_sandbox("pod-b");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  Status running = internal_error("no callback");
  auto cid = ctrd_.create_and_start(*sb, req, "wasmtime-shim",
                                    [&](Status st) { running = std::move(st); });
  ASSERT_TRUE(cid.is_ok());
  node_.kernel().run();
  ASSERT_TRUE(running.is_ok()) << running.to_string();
  auto state = ctrd_.container_state(*cid);
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state->state, oci::ContainerState::kRunning);
  EXPECT_EQ(state->exit_code, 0u);
  // The shim process (engine included) is charged inside the pod cgroup.
  mem::Cgroup* cg = node_.cgroups().find("kubepods/pod-pod-b");
  ASSERT_NE(cg, nullptr);
  EXPECT_GT(cg->working_set().value, 4u << 20)
      << "runwasi shim footprint must land in the pod cgroup";
}

TEST_F(ContainerdTest, UnknownHandlerRejected) {
  auto sb = make_sandbox("pod-c");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  EXPECT_EQ(ctrd_.create_and_start(*sb, req, "nonexistent", nullptr)
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(ContainerdTest, UnknownImageRejected) {
  auto sb = make_sandbox("pod-d");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "missing:latest";
  EXPECT_EQ(ctrd_.create_and_start(*sb, req, "crun-wamr", nullptr)
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(ContainerdTest, RemoveSandboxReleasesEverything) {
  const mem::FreeReport before = node_.memory().free_report();
  auto sb = make_sandbox("pod-e");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  ASSERT_TRUE(
      ctrd_.create_and_start(*sb, req, "crun-wamr", nullptr).is_ok());
  node_.kernel().run();
  EXPECT_GT(node_.memory().free_report().used, before.used);
  ASSERT_TRUE(ctrd_.remove_pod_sandbox(*sb).is_ok());
  const mem::FreeReport after = node_.memory().free_report();
  EXPECT_EQ(after.used, before.used) << "full teardown must restore memory";
  EXPECT_EQ(after.buffcache, before.buffcache);
  EXPECT_EQ(ctrd_.sandbox_count(), 0u);
  EXPECT_EQ(node_.procs().count(), 0u);
}

TEST_F(ContainerdTest, RemoveSandboxWithRunwasiReleasesEverything) {
  const Bytes before = node_.memory().anon_total();
  auto sb = make_sandbox("pod-f");
  ASSERT_TRUE(sb.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  ASSERT_TRUE(
      ctrd_.create_and_start(*sb, req, "wasmtime-shim", nullptr).is_ok());
  node_.kernel().run();
  ASSERT_TRUE(ctrd_.remove_pod_sandbox(*sb).is_ok());
  EXPECT_EQ(node_.memory().anon_total(), before);
  EXPECT_EQ(node_.memory().shared_resident().value, 0u);
}

TEST_F(ContainerdTest, ImageLayersCachedOncePerImage) {
  auto sb1 = make_sandbox("pod-g");
  auto sb2 = make_sandbox("pod-h");
  ASSERT_TRUE(sb1.is_ok());
  ASSERT_TRUE(sb2.is_ok());
  ContainerRequest req;
  req.name = "c";
  req.image = "svc:wasm";
  ASSERT_TRUE(ctrd_.create_and_start(*sb1, req, "crun-wamr", nullptr).is_ok());
  ASSERT_TRUE(ctrd_.create_and_start(*sb2, req, "crun-wamr", nullptr).is_ok());
  node_.kernel().run();
  EXPECT_EQ(node_.memory().page_cache().value, 8192u)
      << "two containers, one image: cached once";
}

TEST_F(ContainerdTest, HandlerNamesListed) {
  auto names = ctrd_.handler_names();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(ctrd_.has_handler("crun-wamr"));
  EXPECT_FALSE(ctrd_.has_handler("youki"));
}

}  // namespace
}  // namespace wasmctr::containerd
