// Deployment-controller tests: replica reconciliation, terminal-pod GC,
// the replacement budget, and the scheduler-slot regression (a node full
// of failed pods must not block new ones).
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace wasmctr::serve {
namespace {

using k8s::Cluster;
using k8s::ClusterOptions;
using k8s::DeployConfig;
using k8s::Pod;
using k8s::PodPhase;
using k8s::PodSpec;
using k8s::RestartPolicy;
using sim::FaultKind;

DeploymentSpec wasm_deployment(const std::string& name, uint32_t replicas) {
  DeploymentSpec spec;
  spec.name = name;
  spec.replicas = replicas;
  spec.pod_template.image = "request-service:wasm";
  spec.pod_template.runtime_class = "crun-wamr";
  spec.pod_template.restart_policy = RestartPolicy::kNever;
  return spec;
}

TEST(DeploymentTest, KeepsReadyReplicasAtSpec) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deployments().create(wasm_deployment("web", 3)).is_ok());
  cluster.run();

  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 3u);
  EXPECT_EQ(cluster.deployments().pods_created("web"), 3u);
  const auto pods = cluster.deployments().pods_of("web");
  ASSERT_EQ(pods.size(), 3u);
  EXPECT_EQ(pods[0], "web-00000");
  EXPECT_EQ(pods[2], "web-00002");
}

TEST(DeploymentTest, FailedPodsReleaseSchedulerSlots) {
  // Regression (ISSUE 3 satellite 1): fill a node with pods that fail
  // terminally; their scheduler bindings must be released so fresh pods
  // still schedule. Before the fix, bound slots leaked on Failed pods and
  // the node wedged at capacity.
  ClusterOptions opts;
  opts.max_pods = 3;  // node capacity = 3 slots
  Cluster cluster(opts);
  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 1.0);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3, "bad").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.failed_count(), 3u);
  EXPECT_EQ(cluster.scheduler().bound_count(), 0u)
      << "terminal pods must release their scheduler bindings";

  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 0.0);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3, "good").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 3u)
      << "freed slots must be reusable without deleting the failed pods";
  EXPECT_EQ(cluster.scheduler().unschedulable_count(), 0u);
  EXPECT_EQ(cluster.scheduler().bound_count(), 3u);
}

TEST(DeploymentTest, ReplacesFailedPodsAndReleasesTheirSlots) {
  // Pods OOM-kill under restartPolicy=Never → Failed → the controller
  // GCs them (releasing slot + kubelet charge) and creates replacements.
  Cluster cluster;
  DeploymentSpec spec = wasm_deployment("api", 2);
  spec.pod_template.memory_limit = 32ull << 20;
  ASSERT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.deployments().ready_replicas("api"), 2u);

  const Pod* victim = cluster.api().pod("api-00000");
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(cluster.cri()
                .grow_container_memory(victim->status.container_id,
                                       Bytes(64ull << 20))
                .code(),
            ErrorCode::kResourceExhausted);
  cluster.run();

  EXPECT_EQ(cluster.deployments().ready_replicas("api"), 2u)
      << "the controller must replace the OOM-killed replica";
  EXPECT_EQ(cluster.deployments().pods_gced("api"), 1u);
  EXPECT_EQ(cluster.deployments().pods_created("api"), 3u);
  EXPECT_EQ(cluster.api().pod("api-00000"), nullptr)
      << "the terminal pod must be deleted from the API server";
  EXPECT_EQ(cluster.scheduler().bound_count(), 2u)
      << "zero leaked slots: exactly the live replicas are bound";
  EXPECT_EQ(cluster.kubelet().active_pods(), 2u);
}

TEST(DeploymentTest, DoomedTemplateConvergesWithinReplaceBudget) {
  Cluster cluster;
  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 1.0);
  DeploymentSpec spec = wasm_deployment("doomed", 2);
  spec.replace_budget = 3;
  ASSERT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
  cluster.run();  // must quiesce: the budget bounds replacement creations

  EXPECT_TRUE(cluster.deployments().budget_exhausted("doomed"));
  EXPECT_EQ(cluster.deployments().pods_created("doomed"), 5u)
      << "replicas + replace_budget pods, then give up";
  EXPECT_EQ(cluster.deployments().ready_replicas("doomed"), 0u);
  EXPECT_NE(cluster.deployments().trace_string().find("budget-exhausted"),
            std::string::npos);
  EXPECT_EQ(cluster.scheduler().bound_count(), 0u)
      << "every failed replacement must return its slot";
}

TEST(DeploymentTest, ScaleUpAndDown) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deployments().create(wasm_deployment("web", 2)).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 2u);

  ASSERT_TRUE(cluster.deployments().scale("web", 4).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 4u);

  ASSERT_TRUE(cluster.deployments().scale("web", 1).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 1u);
  EXPECT_EQ(cluster.deployments().pods_of("web").size(), 1u);
  EXPECT_EQ(cluster.kubelet().active_pods(), 1u)
      << "scaled-down pods must release kubelet bookkeeping";
  EXPECT_EQ(cluster.scheduler().bound_count(), 1u);
}

TEST(DeploymentTest, ExternallyDeletedPodIsReplaced) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deployments().create(wasm_deployment("web", 2)).is_ok());
  cluster.run();
  ASSERT_TRUE(cluster.api().delete_pod("web-00001").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 2u);
  EXPECT_EQ(cluster.deployments().pods_created("web"), 3u);
}

TEST(DeploymentTest, RejectsInvalidSpecs) {
  Cluster cluster;
  DeploymentSpec unnamed;
  unnamed.pod_template.image = "request-service:wasm";
  EXPECT_EQ(cluster.deployments().create(unnamed).code(),
            ErrorCode::kInvalidArgument);
  DeploymentSpec no_image;
  no_image.name = "x";
  EXPECT_EQ(cluster.deployments().create(no_image).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(cluster.deployments().create(wasm_deployment("web", 1)).is_ok());
  EXPECT_EQ(cluster.deployments().create(wasm_deployment("web", 1)).code(),
            ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace wasmctr::serve
