// Endpoints bookkeeping + load-balancer tests (ISSUE 3 satellite 4):
// endpoints leave on OOM-kill/eviction, rejoin after backoff recovery,
// and the balancer never routes to a NotReady pod.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"
#include "serve/endpoints.hpp"

namespace wasmctr::serve {
namespace {

using k8s::Cluster;
using k8s::ClusterOptions;
using k8s::LbPolicy;
using k8s::Pod;
using k8s::PodPhase;
using k8s::PodSpec;
using k8s::RestartPolicy;
using k8s::Service;

DeploymentSpec serving_deployment(const std::string& name, uint32_t replicas,
                                  RestartPolicy policy) {
  DeploymentSpec spec;
  spec.name = name;
  spec.replicas = replicas;
  spec.pod_template.image = "request-service:wasm";
  spec.pod_template.runtime_class = "crun-wamr";
  spec.pod_template.restart_policy = policy;
  return spec;
}

Service service_for(const std::string& deployment, LbPolicy policy) {
  Service svc;
  svc.name = deployment + "-svc";
  svc.selector = {{"app", deployment}};
  svc.policy = policy;
  return svc;
}

TEST(EndpointsTest, TracksReadyPodsBySelector) {
  Cluster cluster;
  ASSERT_TRUE(cluster.api()
                  .create_service(service_for("web", LbPolicy::kRoundRobin))
                  .is_ok());
  ASSERT_TRUE(cluster.deployments()
                  .create(serving_deployment("web", 2, RestartPolicy::kNever))
                  .is_ok());
  // A pod that matches no selector must stay out of the endpoints.
  PodSpec other;
  other.name = "other";
  other.image = "request-service:wasm";
  other.runtime_class = "crun-wamr";
  ASSERT_TRUE(cluster.deploy_pod(std::move(other)).is_ok());
  cluster.run();

  const k8s::Endpoints* eps = cluster.endpoints().endpoints("web-svc");
  ASSERT_NE(eps, nullptr);
  EXPECT_EQ(eps->ready,
            (std::vector<std::string>{"web-00000", "web-00001"}));
  EXPECT_EQ(cluster.endpoints().endpoints("nope"), nullptr);
}

TEST(EndpointsTest, OomKilledPodLeavesAndRejoinsAfterBackoff) {
  Cluster cluster;
  ASSERT_TRUE(cluster.api()
                  .create_service(service_for("web", LbPolicy::kRoundRobin))
                  .is_ok());
  DeploymentSpec spec =
      serving_deployment("web", 2, RestartPolicy::kOnFailure);
  spec.pod_template.memory_limit = 32ull << 20;
  ASSERT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
  cluster.run();
  const k8s::Endpoints* eps = cluster.endpoints().endpoints("web-svc");
  ASSERT_NE(eps, nullptr);
  ASSERT_EQ(eps->ready.size(), 2u);

  const Pod* victim = cluster.api().pod("web-00000");
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(cluster.cri()
                .grow_container_memory(victim->status.container_id,
                                       Bytes(64ull << 20))
                .code(),
            ErrorCode::kResourceExhausted);
  // Synchronously after the OOM kill the pod is in CrashLoopBackOff and
  // must already be out of the endpoints.
  EXPECT_EQ(eps->ready, (std::vector<std::string>{"web-00001"}))
      << "an OOM-killed pod must leave the endpoints immediately";

  cluster.run();  // backoff expires, in-place restart reaches Running
  EXPECT_EQ(eps->ready,
            (std::vector<std::string>{"web-00000", "web-00001"}))
      << "the recovered pod must rejoin";
  const std::string& trace = cluster.endpoints().trace_string();
  EXPECT_NE(trace.find("-web-00000"), std::string::npos);
  EXPECT_NE(trace.rfind("+web-00000"), trace.find("+web-00000"))
      << "web-00000 must be added twice: at startup and after recovery";
}

TEST(EndpointsTest, EvictedPodLeavesEndpoints) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.api()
                  .create_service(service_for("web", LbPolicy::kRoundRobin))
                  .is_ok());
  // Never + no memory limit: the hog is BestEffort and evictable; the
  // deployment replaces it after eviction.
  ASSERT_TRUE(cluster.deployments()
                  .create(serving_deployment("web", 2, RestartPolicy::kNever))
                  .is_ok());
  cluster.run();
  ASSERT_EQ(cluster.endpoints().endpoints("web-svc")->ready.size(), 2u);

  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod("web-00000")->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());
  // Admission of an unrelated pod triggers the node-pressure check.
  PodSpec late;
  late.name = "late";
  late.image = "request-service:wasm";
  late.runtime_class = "crun-wamr";
  ASSERT_TRUE(cluster.deploy_pod(std::move(late)).is_ok());
  cluster.run();

  EXPECT_EQ(cluster.kubelet().pods_evicted(), 1u);
  EXPECT_NE(cluster.endpoints().trace_string().find("-web-00000"),
            std::string::npos)
      << "the evicted pod must have left the endpoints";
  // The deployment replaced the evicted replica with a fresh Ready pod.
  EXPECT_EQ(cluster.endpoints().endpoints("web-svc")->ready,
            (std::vector<std::string>{"web-00001", "web-00002"}));
}

TEST(EndpointsTest, LbNeverRoutesToNotReadyPod) {
  Cluster cluster;
  ASSERT_TRUE(
      cluster.api()
          .create_service(service_for("web", LbPolicy::kLeastOutstanding))
          .is_ok());
  DeploymentSpec spec =
      serving_deployment("web", 3, RestartPolicy::kOnFailure);
  spec.pod_template.memory_limit = 32ull << 20;
  ASSERT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
  cluster.run();

  EXPECT_EQ(cluster.cri()
                .grow_container_memory(
                    cluster.api().pod("web-00001")->status.container_id,
                    Bytes(64ull << 20))
                .code(),
            ErrorCode::kResourceExhausted);
  ASSERT_EQ(cluster.api().pod("web-00001")->status.phase,
            PodPhase::kCrashLoopBackOff);

  LoadBalancer lb(cluster.endpoints(), "web-svc",
                  LbPolicy::kLeastOutstanding);
  for (int i = 0; i < 64; ++i) {
    const auto pick = lb.pick();
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(*pick, "web-00001")
        << "a NotReady pod must never be routed to";
    lb.on_dispatch(*pick);
  }
}

TEST(EndpointsTest, RoundRobinCyclesAndLeastOutstandingPicksIdle) {
  // Pure-bookkeeping fixture: an API server + kernel, no kubelet. Pods
  // are marked Running by hand through notify_status.
  sim::Kernel kernel;
  k8s::ApiServer api;
  EndpointsController endpoints(kernel, api);
  Service svc;
  svc.name = "svc";
  svc.selector = {{"app", "demo"}};
  ASSERT_TRUE(api.create_service(svc).is_ok());
  for (const char* name : {"a", "b", "c"}) {
    PodSpec spec;
    spec.name = name;
    spec.image = "img";
    spec.labels = {{"app", "demo"}};
    ASSERT_TRUE(api.create_pod(std::move(spec)).is_ok());
    api.pod(name)->status.phase = PodPhase::kRunning;
    api.notify_status(name);
  }

  LoadBalancer rr(endpoints, "svc", LbPolicy::kRoundRobin);
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) order.push_back(*rr.pick());
  EXPECT_EQ(order,
            (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));

  LoadBalancer lo(endpoints, "svc", LbPolicy::kLeastOutstanding);
  const auto first = lo.pick();
  ASSERT_TRUE(first.has_value());
  lo.on_dispatch(*first);
  lo.on_dispatch(*first);  // pile work on the first pick
  const auto second = lo.pick();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first)
      << "least-outstanding must prefer the idle endpoints";
  lo.on_complete(*first);
  lo.on_complete(*first);
  EXPECT_EQ(lo.outstanding(*first), 0u);

  LoadBalancer empty(endpoints, "unknown-svc", LbPolicy::kRoundRobin);
  EXPECT_FALSE(empty.pick().has_value());
}

TEST(EndpointsTest, LbHandlesEndpointEvictedMidFlight) {
  // An endpoint evicted while requests are still in flight: picks must
  // never route to the removed endpoint, and the late completions must
  // drain its outstanding entry instead of leaking it forever.
  sim::Kernel kernel;
  k8s::ApiServer api;
  EndpointsController endpoints(kernel, api);
  Service svc;
  svc.name = "svc";
  svc.selector = {{"app", "demo"}};
  svc.policy = LbPolicy::kLeastOutstanding;
  ASSERT_TRUE(api.create_service(svc).is_ok());
  for (const char* name : {"a", "b"}) {
    PodSpec spec;
    spec.name = name;
    spec.image = "img";
    spec.labels = {{"app", "demo"}};
    ASSERT_TRUE(api.create_pod(std::move(spec)).is_ok());
    api.pod(name)->status.phase = PodPhase::kRunning;
    api.notify_status(name);
  }

  LoadBalancer lb(endpoints, "svc", LbPolicy::kLeastOutstanding);
  lb.on_dispatch("a");
  lb.on_dispatch("a");  // two requests in flight at "a"

  api.pod("a")->status.phase = PodPhase::kEvicted;
  api.notify_status("a");  // "a" leaves the ready list mid-flight

  for (int i = 0; i < 16; ++i) {
    const auto pick = lb.pick();
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, "b")
        << "least-outstanding must not route to a removed endpoint";
    lb.on_dispatch(*pick);
    lb.on_complete(*pick);
  }
  EXPECT_EQ(lb.outstanding_entries(), 1u)
      << "only the evicted pod's in-flight requests remain";

  // The in-flight requests complete after the eviction: the counter
  // must drain to zero and the entry must be erased, not leak.
  lb.on_complete("a");
  lb.on_complete("a");
  EXPECT_EQ(lb.outstanding("a"), 0u);
  EXPECT_EQ(lb.outstanding_entries(), 0u)
      << "drained entries must be erased";
  lb.on_complete("a");  // stray duplicate completion is a no-op
  EXPECT_EQ(lb.outstanding_entries(), 0u);
}

}  // namespace
}  // namespace wasmctr::serve
