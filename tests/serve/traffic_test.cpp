// Traffic-driver tests: cold/warm serving through the full CRI → OCI →
// engine path, retry behaviour under churn, and same-seed determinism.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"
#include "serve/traffic.hpp"

namespace wasmctr::serve {
namespace {

using k8s::Cluster;
using k8s::LbPolicy;
using k8s::Pod;
using k8s::RestartPolicy;
using k8s::Service;

struct Fixture {
  Cluster cluster;

  Fixture(const std::string& image, const std::string& runtime_class,
          uint32_t replicas, LbPolicy policy,
          uint64_t memory_limit = 0) {
    Service svc;
    svc.name = "svc";
    svc.selector = {{"app", "srv"}};
    svc.policy = policy;
    EXPECT_TRUE(cluster.api().create_service(svc).is_ok());
    DeploymentSpec spec;
    spec.name = "srv";
    spec.replicas = replicas;
    spec.pod_template.image = image;
    spec.pod_template.runtime_class = runtime_class;
    spec.pod_template.restart_policy = RestartPolicy::kOnFailure;
    spec.pod_template.memory_limit = memory_limit;
    EXPECT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
    cluster.run();
    EXPECT_EQ(cluster.deployments().ready_replicas("srv"), replicas);
  }

  TrafficDriver drive(TrafficOptions options) {
    options.service = "svc";
    return TrafficDriver(cluster.node().kernel(), cluster.api(),
                         cluster.cri(), cluster.endpoints(),
                         std::move(options));
  }
};

TEST(TrafficTest, WasmColdThenWarmRequests) {
  Fixture fx("request-service:wasm", "crun-wamr", 1, LbPolicy::kRoundRobin);
  TrafficOptions opts;
  opts.total_requests = 6;
  opts.rate_rps = 20.0;
  TrafficDriver driver = fx.drive(opts);
  driver.start();
  fx.cluster.run();

  EXPECT_EQ(driver.served(), 6u);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_EQ(driver.cold_hits(), 1u)
      << "only the first request pays instantiation";
  EXPECT_EQ(driver.warm_hits(), 5u);
  const auto& outcomes = driver.outcomes();
  EXPECT_TRUE(outcomes[0].cold);
  for (const RequestOutcome& out : outcomes) {
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.pod, "srv-00000");
    EXPECT_EQ(out.result, outcomes[0].result)
        << "the handler is deterministic in its argument";
    EXPECT_GT(out.latency.count(), 0);
  }
  // Cold instantiation dominates: the first request is the slowest.
  EXPECT_GT(outcomes[0].latency, outcomes[1].latency);
  const LatencyStats stats = driver.latency();
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
  EXPECT_GE(stats.max_ms, stats.p99_ms);
  EXPECT_GT(driver.throughput_rps(), 0.0);
}

TEST(TrafficTest, PythonHandlerServesThroughRuncPath) {
  Fixture fx("request-service:python", "runc", 1, LbPolicy::kRoundRobin);
  TrafficOptions opts;
  opts.total_requests = 4;
  TrafficDriver driver = fx.drive(opts);
  driver.start();
  fx.cluster.run();

  EXPECT_EQ(driver.served(), 4u);
  EXPECT_EQ(driver.cold_hits(), 1u);
  EXPECT_EQ(driver.warm_hits(), 3u);
  for (const RequestOutcome& out : driver.outcomes()) {
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.result, driver.outcomes()[0].result);
  }
  // The boot printed through the real interpreter.
  const auto out = fx.cluster.pod_stdout("srv-00000");
  ASSERT_TRUE(out);
  EXPECT_NE(out->find("request-service ready"), std::string::npos);
}

TEST(TrafficTest, BurstQueuesOnSingleWarmInstance) {
  // One replica, arrivals far faster than service: requests queue FIFO on
  // the instance (concurrency 1) and all complete.
  Fixture fx("request-service:wasm", "crun-wamr", 1, LbPolicy::kRoundRobin);
  TrafficOptions opts;
  opts.total_requests = 10;
  opts.rate_rps = 5000.0;
  TrafficDriver driver = fx.drive(opts);
  driver.start();
  fx.cluster.run();

  EXPECT_EQ(driver.served(), 10u);
  const auto& outcomes = driver.outcomes();
  // FIFO queue on one instance: completions come back in arrival order,
  // and every queued request waits at least one service time.
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_GE(outcomes[i].completed, outcomes[i - 1].completed)
        << "request " << i << " must queue behind request " << i - 1;
    EXPECT_GT(outcomes[i].latency.count(), 0);
  }
}

TEST(TrafficTest, SpreadsOverReplicasLeastOutstanding) {
  Fixture fx("request-service:wasm", "crun-wamr", 3,
             LbPolicy::kLeastOutstanding);
  TrafficOptions opts;
  opts.total_requests = 30;
  opts.rate_rps = 200.0;
  TrafficDriver driver = fx.drive(opts);
  driver.start();
  fx.cluster.run();

  EXPECT_EQ(driver.served(), 30u);
  EXPECT_EQ(driver.cold_hits(), 3u) << "each replica pays one cold start";
  std::map<std::string, uint32_t> per_pod;
  for (const RequestOutcome& out : driver.outcomes()) ++per_pod[out.pod];
  EXPECT_EQ(per_pod.size(), 3u) << "all replicas must serve";
}

TEST(TrafficTest, RetriesThroughMidTrafficOomChurn) {
  // A pod OOM-kills mid-traffic: in-flight and routed-to-it requests
  // retry (with backoff) onto surviving replicas or the recovered pod;
  // every request is eventually served.
  Fixture fx("request-service:wasm", "crun-wamr", 2,
             LbPolicy::kLeastOutstanding, /*memory_limit=*/48ull << 20);
  TrafficOptions opts;
  opts.total_requests = 40;
  opts.rate_rps = 5000.0;  // dense burst: deep queues during cold start
  TrafficDriver driver = fx.drive(opts);
  driver.start();
  // While the cold instantiation is still in flight (and requests are
  // queued behind it), one replica's cgroup is breached.
  fx.cluster.node().kernel().schedule_after(sim_s(0.05), [&fx] {
    const Pod* pod = fx.cluster.api().pod("srv-00000");
    if (pod == nullptr || pod->status.container_id.empty()) return;
    (void)fx.cluster.cri().grow_container_memory(pod->status.container_id,
                                                 Bytes(96ull << 20));
  });
  fx.cluster.run();

  EXPECT_EQ(driver.served(), 40u) << "every request must eventually land";
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_GT(driver.retries(), 0u) << "the kill must have forced retries";
  EXPECT_EQ(fx.cluster.deployments().ready_replicas("srv"), 2u);
}

TEST(TrafficTest, SameSeedRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Fixture fx("request-service:wasm", "crun-wamr", 2,
               LbPolicy::kLeastOutstanding, /*memory_limit=*/48ull << 20);
    TrafficOptions opts;
    opts.total_requests = 25;
    opts.rate_rps = 50.0;
    opts.seed = 0xfeed;
    TrafficDriver driver = fx.drive(opts);
    driver.start();
    fx.cluster.node().kernel().schedule_after(sim_s(0.3), [&fx] {
      const Pod* pod = fx.cluster.api().pod("srv-00001");
      if (pod == nullptr || pod->status.container_id.empty()) return;
      (void)fx.cluster.cri().grow_container_memory(pod->status.container_id,
                                                   Bytes(96ull << 20));
    });
    fx.cluster.run();
    EXPECT_EQ(driver.served() + driver.failed(), 25u);
    return std::tuple(std::string(driver.trace_string()),
                      std::string(fx.cluster.endpoints().trace_string()),
                      driver.throughput_rps());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b)) << "request traces must match";
  EXPECT_EQ(std::get<1>(a), std::get<1>(b)) << "endpoint churn must match";
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

}  // namespace
}  // namespace wasmctr::serve
