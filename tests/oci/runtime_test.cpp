// Low-level runtime lifecycle tests: crun (WAMR embedded + exec'd
// engines), runC, youki, against a real simulated node.
#include "oci/runtime.hpp"

#include <gtest/gtest.h>

#include "pylite/scripts.hpp"
#include "wasm/builder.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::oci {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  void write_wasm_bundle(const std::string& path,
                         std::vector<uint8_t> module = {}) {
    RuntimeSpec spec;
    spec.args = {"app.wasm"};
    spec.env = {{"SERVICE", "test"}};
    spec.annotations["run.oci.handler"] = "wasm";
    Payload payload;
    payload.kind = Payload::Kind::kWasm;
    payload.wasm =
        module.empty() ? wasm::build_minimal_microservice() : std::move(module);
    ASSERT_TRUE(write_bundle(node_.fs(), path, spec, payload).is_ok());
  }

  void write_python_bundle(const std::string& path) {
    RuntimeSpec spec;
    spec.args = {"app.py"};
    Payload payload;
    payload.kind = Payload::Kind::kPython;
    payload.script = pylite::minimal_microservice_script();
    ASSERT_TRUE(write_bundle(node_.fs(), path, spec, payload).is_ok());
  }

  /// Start and run to completion; returns the terminal status.
  Status start_and_run(LowLevelRuntime& rt, const std::string& id) {
    Status result = internal_error("callback never fired");
    EXPECT_TRUE(rt.start(id, [&](Status st) { result = std::move(st); })
                    .is_ok());
    node_.kernel().run();
    return result;
  }

  sim::Node node_;
};

TEST_F(RuntimeTest, CrunWamrFullLifecycle) {
  write_wasm_bundle("b/wamr");
  Crun crun(node_, engines::EngineKind::kWamr);
  EXPECT_EQ(crun.name(), "crun-wamr");
  ASSERT_TRUE(crun.create("c1", "b/wamr", "pod/c1").is_ok());
  auto created = crun.state("c1");
  ASSERT_TRUE(created.is_ok());
  EXPECT_EQ(created->state, ContainerState::kCreated);

  ASSERT_TRUE(start_and_run(crun, "c1").is_ok());
  auto running = crun.state("c1");
  ASSERT_TRUE(running.is_ok());
  EXPECT_EQ(running->state, ContainerState::kRunning);
  EXPECT_NE(running->pid, 0u);
  EXPECT_EQ(running->exit_code, 0u);
  EXPECT_EQ(running->stdout_data, "hello from wasm microservice\n")
      << "the module must actually have executed";

  // The workload's memory is charged to the container cgroup.
  mem::Cgroup* cg = node_.cgroups().find("pod/c1");
  ASSERT_NE(cg, nullptr);
  EXPECT_GT(cg->working_set().value, 3u << 20);

  ASSERT_TRUE(crun.kill("c1").is_ok());
  EXPECT_EQ(crun.state("c1")->state, ContainerState::kStopped);
  ASSERT_TRUE(crun.remove("c1").is_ok());
  EXPECT_EQ(crun.state("c1").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(node_.cgroups().find("pod/c1"), nullptr);
  EXPECT_EQ(node_.memory().anon_total().value, 0u)
      << "teardown must release every byte";
}

TEST_F(RuntimeTest, DynamicLibraryLoadingIsLazy) {
  // §III-C item 1: libwamr pages are resident only once a Wasm container
  // starts, and shared across containers.
  write_wasm_bundle("b/w1");
  write_wasm_bundle("b/w2");
  Crun crun(node_, engines::EngineKind::kWamr);
  const mem::FileId libwamr = node_.file_id("libwamr.so");
  ASSERT_TRUE(crun.create("c1", "b/w1", "pod/c1").is_ok());
  EXPECT_EQ(node_.memory().shared_mappers(libwamr), 0u)
      << "create must not load the engine library";
  ASSERT_TRUE(start_and_run(crun, "c1").is_ok());
  EXPECT_EQ(node_.memory().shared_mappers(libwamr), 1u);
  const Bytes resident_one = node_.memory().shared_resident();
  ASSERT_TRUE(crun.create("c2", "b/w2", "pod/c2").is_ok());
  ASSERT_TRUE(start_and_run(crun, "c2").is_ok());
  EXPECT_EQ(node_.memory().shared_mappers(libwamr), 2u);
  EXPECT_EQ(node_.memory().shared_resident(), resident_one)
      << "second container shares the same physical library pages";
}

TEST_F(RuntimeTest, WasiArgumentsReachTheModule) {
  // §III-C item 2: env from the OCI config is visible inside the module.
  // file_logger writes through the /data preopen wired from the bundle.
  RuntimeSpec spec;
  spec.args = {"app.wasm"};
  spec.annotations["run.oci.handler"] = "wasm";
  Payload payload;
  payload.kind = Payload::Kind::kWasm;
  payload.wasm = wasm::build_file_logger();
  ASSERT_TRUE(write_bundle(node_.fs(), "b/logger", spec, payload).is_ok());

  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("log1", "b/logger", "pod/log1").is_ok());
  ASSERT_TRUE(start_and_run(crun, "log1").is_ok());
  auto contents = node_.fs().read_file("b/logger/rootfs/data/out.log");
  ASSERT_TRUE(contents.is_ok())
      << "preopened /data must map to the bundle rootfs";
  EXPECT_EQ(*contents, "status=ok\n");
}

TEST_F(RuntimeTest, SandboxedExecutionStopsTrappingModule) {
  // §III-C item 3: a trapping module fails cleanly, no memory leaks.
  wasm::ModuleBuilder b;
  b.add_memory(1, 1);
  wasm::FnBuilder& f = b.add_function("_start", {}, {});
  f.unreachable().end();
  write_wasm_bundle("b/trap", b.build());
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("t1", "b/trap", "pod/t1").is_ok());
  Status st = start_and_run(crun, "t1");
  EXPECT_EQ(st.code(), ErrorCode::kTrap);
  EXPECT_EQ(crun.state("t1")->state, ContainerState::kStopped);
  EXPECT_EQ(node_.memory().anon_total(),
            engines::kInfra.kernel_per_pod)
      << "only the kernel objects from create remain";
}

TEST_F(RuntimeTest, CrunWithoutBackendRejectsWasm) {
  write_wasm_bundle("b/w");
  Crun crun(node_, std::nullopt);
  ASSERT_TRUE(crun.create("c", "b/w", "pod/c").is_ok());
  EXPECT_EQ(start_and_run(crun, "c").code(), ErrorCode::kUnimplemented);
}

TEST_F(RuntimeTest, RuncRejectsWasm) {
  write_wasm_bundle("b/w");
  Runc runc(node_);
  ASSERT_TRUE(runc.create("c", "b/w", "pod/c").is_ok());
  EXPECT_EQ(start_and_run(runc, "c").code(), ErrorCode::kUnimplemented);
}

TEST_F(RuntimeTest, RuncRunsPython) {
  write_python_bundle("b/py");
  Runc runc(node_);
  ASSERT_TRUE(runc.create("p1", "b/py", "pod/p1").is_ok());
  ASSERT_TRUE(start_and_run(runc, "p1").is_ok());
  auto info = runc.state("p1");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->state, ContainerState::kRunning);
  EXPECT_EQ(info->stdout_data, "hello from python microservice\n");
}

TEST_F(RuntimeTest, YoukiRunsWasmViaWasmEdge) {
  write_wasm_bundle("b/w");
  Youki youki(node_);
  ASSERT_TRUE(youki.create("y1", "b/w", "pod/y1").is_ok());
  ASSERT_TRUE(start_and_run(youki, "y1").is_ok());
  EXPECT_EQ(youki.state("y1")->stdout_data,
            "hello from wasm microservice\n");
}

TEST_F(RuntimeTest, MemoryLimitEnforcedViaCgroup) {
  RuntimeSpec spec;
  spec.args = {"app.wasm"};
  spec.annotations["run.oci.handler"] = "wasm";
  spec.memory_limit = 1 << 20;  // 1 MiB: far below the engine footprint
  Payload payload;
  payload.kind = Payload::Kind::kWasm;
  payload.wasm = wasm::build_minimal_microservice();
  ASSERT_TRUE(write_bundle(node_.fs(), "b/small", spec, payload).is_ok());
  Crun crun(node_, engines::EngineKind::kWamr);
  ASSERT_TRUE(crun.create("small", "b/small", "").is_ok());
  Status st = start_and_run(crun, "small");
  EXPECT_EQ(st.code(), ErrorCode::kResourceExhausted)
      << "cgroup memory.max must reject the engine's footprint";
}

TEST_F(RuntimeTest, LifecycleStateMachineEnforced) {
  write_wasm_bundle("b/w");
  Crun crun(node_, engines::EngineKind::kWamr);
  EXPECT_EQ(crun.start("ghost", nullptr).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(crun.create("c", "b/w", "pod/c").is_ok());
  EXPECT_EQ(crun.create("c", "b/w", "pod/c").code(),
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE(start_and_run(crun, "c").is_ok());
  EXPECT_EQ(crun.start("c", nullptr).code(), ErrorCode::kFailedPrecondition)
      << "cannot start a running container";
  EXPECT_EQ(crun.remove("c").code(), ErrorCode::kFailedPrecondition)
      << "cannot remove a running container";
  ASSERT_TRUE(crun.kill("c").is_ok());
  ASSERT_TRUE(crun.remove("c").is_ok());
}

TEST_F(RuntimeTest, ExecEnginesProduceLargerFootprintThanWamr) {
  // The crux of Fig 3: same module, same node, different engine → more
  // private memory for JIT engines.
  auto footprint = [&](engines::EngineKind kind) {
    sim::Node node;
    RuntimeSpec spec;
    spec.args = {"app.wasm"};
    spec.annotations["run.oci.handler"] = "wasm";
    Payload payload;
    payload.kind = Payload::Kind::kWasm;
    payload.wasm = wasm::build_minimal_microservice();
    EXPECT_TRUE(write_bundle(node.fs(), "b", spec, payload).is_ok());
    Crun crun(node, kind);
    EXPECT_TRUE(crun.create("c", "b", "pod/c").is_ok());
    Status result = internal_error("no callback");
    EXPECT_TRUE(crun.start("c", [&](Status st) { result = std::move(st); })
                    .is_ok());
    node.kernel().run();
    EXPECT_TRUE(result.is_ok()) << result.to_string();
    return node.cgroups().find("pod/c")->working_set();
  };
  const Bytes wamr = footprint(engines::EngineKind::kWamr);
  const Bytes wasmtime = footprint(engines::EngineKind::kWasmtime);
  const Bytes wasmer = footprint(engines::EngineKind::kWasmer);
  const Bytes wasmedge = footprint(engines::EngineKind::kWasmEdge);
  EXPECT_LT(wamr.value, wasmedge.value / 2)
      << "paper Fig 3: ≥50.34 % reduction vs the best other crun engine";
  EXPECT_LT(wasmedge, wasmtime);
  EXPECT_LT(wasmtime, wasmer);
}

}  // namespace
}  // namespace wasmctr::oci
