#include "oci/bundle.hpp"

#include <gtest/gtest.h>

#include "wasm/workloads.hpp"

namespace wasmctr::oci {
namespace {

TEST(BundleTest, WasmBundleRoundtrip) {
  wasi::VirtualFs fs;
  RuntimeSpec spec;
  spec.args = {"app.wasm", "--port", "8080"};
  spec.annotations["run.oci.handler"] = "wasm";
  Payload payload;
  payload.kind = Payload::Kind::kWasm;
  payload.wasm = wasm::build_minimal_microservice();

  ASSERT_TRUE(write_bundle(fs, "bundles/b1", spec, payload).is_ok());
  EXPECT_TRUE(fs.exists("bundles/b1/config.json"));
  EXPECT_TRUE(fs.exists("bundles/b1/rootfs/app.wasm"));
  EXPECT_TRUE(fs.exists("bundles/b1/rootfs/data"));

  auto b = read_bundle(fs, "bundles/b1");
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  EXPECT_EQ(b->spec.args, spec.args);
  EXPECT_TRUE(b->spec.wants_wasm_handler());
  EXPECT_EQ(b->payload.kind, Payload::Kind::kWasm);
  EXPECT_EQ(b->payload.wasm, payload.wasm);
}

TEST(BundleTest, PythonBundleRoundtrip) {
  wasi::VirtualFs fs;
  RuntimeSpec spec;
  spec.args = {"app.py"};
  Payload payload;
  payload.kind = Payload::Kind::kPython;
  payload.script = "print(1 + 1)\n";
  ASSERT_TRUE(write_bundle(fs, "bundles/py", spec, payload).is_ok());
  auto b = read_bundle(fs, "bundles/py");
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b->payload.kind, Payload::Kind::kPython);
  EXPECT_EQ(b->payload.script, "print(1 + 1)\n");
}

TEST(BundleTest, ReadMissingBundleFails) {
  wasi::VirtualFs fs;
  EXPECT_EQ(read_bundle(fs, "nope").status().code(), ErrorCode::kNotFound);
}

TEST(BundleTest, ReadCorruptConfigFails) {
  wasi::VirtualFs fs;
  ASSERT_TRUE(fs.write_file("b/config.json", "{broken").is_ok());
  EXPECT_EQ(read_bundle(fs, "b").status().code(), ErrorCode::kMalformed);
}

TEST(BundleTest, MissingEntrypointFails) {
  wasi::VirtualFs fs;
  RuntimeSpec spec;
  spec.args = {"app.wasm"};
  ASSERT_TRUE(
      fs.write_file("b/config.json", spec.to_config_json()).is_ok());
  ASSERT_TRUE(fs.mkdirs("b/rootfs").is_ok());
  EXPECT_EQ(read_bundle(fs, "b").status().code(), ErrorCode::kNotFound);
}

TEST(BundleTest, PayloadEntrypointByKind) {
  Payload wasm_payload;
  wasm_payload.kind = Payload::Kind::kWasm;
  EXPECT_EQ(wasm_payload.entrypoint(), "app.wasm");
  Payload py;
  py.kind = Payload::Kind::kPython;
  EXPECT_EQ(py.entrypoint(), "app.py");
}

}  // namespace
}  // namespace wasmctr::oci
