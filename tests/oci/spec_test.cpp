#include "oci/spec.hpp"

#include <gtest/gtest.h>

namespace wasmctr::oci {
namespace {

RuntimeSpec sample_spec() {
  RuntimeSpec spec;
  spec.args = {"app.wasm", "--threads", "2"};
  spec.env = {{"PORT", "8080"}, {"MODE", "prod"}};
  spec.cwd = "/srv";
  spec.mounts = {{"/data", "/var/lib/pod1/data", "bind", {"ro"}}};
  spec.annotations = {{"run.oci.handler", "wasm"}};
  spec.memory_limit = 128ull << 20;
  spec.cgroups_path = "kubepods/pod1/ctr1";
  return spec;
}

TEST(RuntimeSpecTest, JsonRoundtrip) {
  const RuntimeSpec spec = sample_spec();
  auto parsed = RuntimeSpec::parse(spec.to_config_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->args, spec.args);
  EXPECT_EQ(parsed->env, spec.env);
  EXPECT_EQ(parsed->cwd, "/srv");
  EXPECT_EQ(parsed->mounts, spec.mounts);
  EXPECT_EQ(parsed->annotations.at("run.oci.handler"), "wasm");
  EXPECT_EQ(parsed->memory_limit, 128ull << 20);
  EXPECT_EQ(parsed->cgroups_path, "kubepods/pod1/ctr1");
}

TEST(RuntimeSpecTest, WasmHandlerDetection) {
  RuntimeSpec spec;
  spec.args = {"a"};
  EXPECT_FALSE(spec.wants_wasm_handler());
  spec.annotations["run.oci.handler"] = "wasm";
  EXPECT_TRUE(spec.wants_wasm_handler());
  spec.annotations.clear();
  spec.annotations["module.wasm.image/variant"] = "compat";
  EXPECT_TRUE(spec.wants_wasm_handler());
  spec.annotations["module.wasm.image/variant"] = "other";
  EXPECT_FALSE(spec.wants_wasm_handler());
}

TEST(RuntimeSpecTest, ParsesRealWorldShapedConfig) {
  const char* config = R"({
    "ociVersion": "1.0.2",
    "process": {
      "args": ["app.py"],
      "env": ["PATH=/usr/bin", "LANG=C.UTF-8"],
      "cwd": "/"
    },
    "root": {"path": "rootfs", "readonly": true},
    "linux": {"resources": {"memory": {"limit": 67108864}}}
  })";
  auto spec = RuntimeSpec::parse(config);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec->args[0], "app.py");
  ASSERT_EQ(spec->env.size(), 2u);
  EXPECT_EQ(spec->env[0].first, "PATH");
  EXPECT_EQ(spec->env[0].second, "/usr/bin");
  EXPECT_EQ(spec->memory_limit, 67108864u);
  EXPECT_FALSE(spec->wants_wasm_handler());
}

TEST(RuntimeSpecTest, RejectsMissingProcess) {
  EXPECT_EQ(RuntimeSpec::parse(R"({"ociVersion":"1.0.2"})").status().code(),
            ErrorCode::kMalformed);
}

TEST(RuntimeSpecTest, RejectsEmptyArgs) {
  EXPECT_FALSE(
      RuntimeSpec::parse(R"({"process":{"args":[]}})").is_ok());
}

TEST(RuntimeSpecTest, RejectsBadEnvEntry) {
  EXPECT_FALSE(
      RuntimeSpec::parse(R"({"process":{"args":["a"],"env":["NOEQ"]}})")
          .is_ok());
}

TEST(RuntimeSpecTest, RejectsNegativeMemoryLimit) {
  EXPECT_FALSE(RuntimeSpec::parse(
                   R"({"process":{"args":["a"]},
                       "linux":{"resources":{"memory":{"limit":-5}}}})")
                   .is_ok());
}

TEST(RuntimeSpecTest, RejectsInvalidJson) {
  EXPECT_EQ(RuntimeSpec::parse("{not json").status().code(),
            ErrorCode::kMalformed);
}

}  // namespace
}  // namespace wasmctr::oci
