// crun-wasmtime shared compilation cache, exercised through the full OCI
// lifecycle: concurrent containers must serialize on one compile, later
// containers must hit the cache, and the timing difference must be
// visible on the virtual clock (the Fig 8 → Fig 9 mechanism).
#include <gtest/gtest.h>

#include "oci/runtime.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::oci {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void write_bundle(const std::string& path) {
    RuntimeSpec spec;
    spec.args = {"app.wasm"};
    spec.annotations["run.oci.handler"] = "wasm";
    Payload payload;
    payload.kind = Payload::Kind::kWasm;
    payload.wasm = wasm::build_minimal_microservice();
    ASSERT_TRUE(
        oci::write_bundle(node_.fs(), path, spec, payload).is_ok());
  }

  /// Create+start one container; returns the virtual time its workload
  /// began executing.
  SimTime start_one(Crun& crun, const std::string& id) {
    write_bundle("b/" + id);
    EXPECT_TRUE(crun.create(id, "b/" + id, "pod/" + id).is_ok());
    SimTime running_at{-1};
    EXPECT_TRUE(crun.start(id, [&, this](Status st) {
                      EXPECT_TRUE(st.is_ok()) << st.to_string();
                      running_at = node_.kernel().now();
                    })
                    .is_ok());
    node_.kernel().run();
    return running_at;
  }

  sim::Node node_;
};

TEST_F(CacheTest, FirstContainerPaysCompileLaterOnesDoNot) {
  Crun crun(node_, engines::EngineKind::kWasmtime);
  const SimTime first = start_one(crun, "c1");
  const SimTime origin = node_.kernel().now();
  const SimTime second = start_one(crun, "c2");
  const double first_s = to_seconds(first);
  const double second_s = to_seconds(second - origin);
  EXPECT_GT(first_s, second_s + 1.0)
      << "first start includes the ~1.2 s compile; second hits the cache";
}

TEST_F(CacheTest, ConcurrentStartersShareOneCompile) {
  Crun crun(node_, engines::EngineKind::kWasmtime);
  constexpr int kContainers = 6;
  std::vector<SimTime> running(kContainers, SimTime{-1});
  for (int i = 0; i < kContainers; ++i) {
    const std::string id = "c" + std::to_string(i);
    write_bundle("b/" + id);
    ASSERT_TRUE(crun.create(id, "b/" + id, "pod/" + id).is_ok());
    ASSERT_TRUE(crun.start(id, [&, i](Status st) {
                      ASSERT_TRUE(st.is_ok()) << st.to_string();
                      running[i] = node_.kernel().now();
                    })
                    .is_ok());
  }
  node_.kernel().run();
  // All ran, and everyone converges shortly after the single compile:
  // had each compiled privately, total CPU would be ~6x larger and the
  // spread between first and last would blow up.
  SimTime min_t = running[0];
  SimTime max_t = running[0];
  for (const SimTime t : running) {
    ASSERT_GE(t.count(), 0);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_LT(to_seconds(max_t - min_t), 1.0)
      << "waiters resume together once the compile publishes";
  // Total CPU consumed stays near one compile + N cheap starts.
  const double cpu = node_.cpu().consumed_cpu_seconds();
  const auto& p = engines::crun_engine_profile(engines::EngineKind::kWasmtime);
  const engines::Engine engine =
      engines::make_crun_engine(engines::EngineKind::kWasmtime);
  auto measured = engine.measure_compile(wasm::build_minimal_microservice());
  ASSERT_TRUE(measured.is_ok());
  const double upper_bound =
      kContainers * (engines::kInfra.crun_exec_cpu_s + p.init_cpu_s +
                     p.cache_load_cpu_s + 0.1) +
      engine.compile_cpu_s(*measured) + 1.0;
  EXPECT_LT(cpu, upper_bound) << "no duplicated compiles";
}

TEST_F(CacheTest, WamrTimingIsFlatAcrossContainers) {
  Crun crun(node_, engines::EngineKind::kWamr);
  const SimTime first = start_one(crun, "w1");
  const SimTime origin = node_.kernel().now();
  const SimTime second = start_one(crun, "w2");
  const double first_s = to_seconds(first);
  const double second_s = to_seconds(second - origin);
  EXPECT_NEAR(first_s, second_s, 0.05)
      << "the interpreter has no warm-up asymmetry";
}

TEST_F(CacheTest, DifferentEnginesKeepSeparateCaches) {
  // A wasmtime compile must not warm wasmer's cache: separate Crun
  // builds (one per backend) model separately-installed runtimes.
  Crun wasmtime(node_, engines::EngineKind::kWasmtime);
  const SimTime wt_first = start_one(wasmtime, "wt1");
  const SimTime origin = node_.kernel().now();
  Crun wasmer(node_, engines::EngineKind::kWasmer);
  const SimTime wm_first = start_one(wasmer, "wm1") - origin;
  EXPECT_GT(to_seconds(wm_first), 1.0)
      << "wasmer still pays its own first compile";
  EXPECT_GT(to_seconds(wt_first), 1.0);
}

}  // namespace
}  // namespace wasmctr::oci
