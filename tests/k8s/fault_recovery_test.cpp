// Failure-recovery tests: fault injection through the whole stack,
// CrashLoopBackOff timing on the virtual clock, the restart-policy
// matrix, OOM-kill propagation, node-pressure eviction, and the node
// bookkeeping (slots, kubelet memory) that earlier versions leaked.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace wasmctr::k8s {
namespace {

using sim::FaultKind;

TEST(FaultRecoveryTest, TransientCriFaultRecoversUnderPolicyNever) {
  // restartPolicy=Never still retries *transient infrastructure* errors:
  // no container ever exited, the sync loop just runs again.
  Cluster cluster;
  cluster.node().faults().set_rate(FaultKind::kCriTransient, 1.0);
  cluster.node().faults().set_max_faults_per_target(2);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "t").is_ok());
  cluster.run();

  EXPECT_EQ(cluster.running_count(), 1u);
  EXPECT_EQ(cluster.failed_count(), 0u);
  const Pod* pod = cluster.api().pod("t-crun-wamr-0");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->status.restart_count, 2u);
  EXPECT_FALSE(pod->status.oom_killed);
  EXPECT_EQ(cluster.node().faults().faults_injected(), 2u);

  const auto& trace = cluster.kubelet().backoff_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].delay, sim_s(10.0));
  EXPECT_EQ(trace[1].delay, sim_s(20.0));
}

TEST(FaultRecoveryTest, BackoffFollowsStockKubeletCurve) {
  // Six consecutive failures walk the stock curve: 10, 20, 40, 80, 160,
  // then the 300 s (5 min) cap.
  Cluster cluster;
  cluster.node().faults().set_rate(FaultKind::kSandboxCreate, 1.0);
  cluster.node().faults().set_rate(FaultKind::kCriTransient, 1.0);
  cluster.node().faults().set_max_faults_per_target(3);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "b").is_ok());
  cluster.run();

  EXPECT_EQ(cluster.running_count(), 1u);
  const auto& trace = cluster.kubelet().backoff_trace();
  ASSERT_EQ(trace.size(), 6u);
  const double expected[] = {10, 20, 40, 80, 160, 300};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(trace[i].attempt, i + 1);
    EXPECT_EQ(trace[i].delay, sim_s(expected[i])) << "attempt " << i + 1;
  }
  // The backoff gaps are real virtual-clock waits between attempts.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GE(trace[i].at - trace[i - 1].at, trace[i - 1].delay);
  }
}

TEST(FaultRecoveryTest, WasmTrapTerminalUnderPolicyNever) {
  Cluster cluster;  // deploy() stamps restartPolicy=Never by default
  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 1.0);
  cluster.node().faults().set_max_faults_per_target(1);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "trap").is_ok());
  cluster.run();

  EXPECT_EQ(cluster.running_count(), 0u);
  EXPECT_EQ(cluster.failed_count(), 1u);
  const Pod* pod = cluster.api().pod("trap-crun-wamr-0");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->status.phase, PodPhase::kFailed);
  EXPECT_EQ(pod->status.reason, "Error");
  EXPECT_EQ(pod->status.restart_count, 0u);
  EXPECT_TRUE(cluster.kubelet().backoff_trace().empty());
}

TEST(FaultRecoveryTest, WasmTrapRecoversUnderRestartPolicies) {
  for (const RestartPolicy policy :
       {RestartPolicy::kOnFailure, RestartPolicy::kAlways}) {
    ClusterOptions opts;
    opts.restart_policy = policy;
    Cluster cluster(opts);
    cluster.node().faults().set_rate(FaultKind::kWasmTrap, 1.0);
    cluster.node().faults().set_max_faults_per_target(1);
    ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "trap").is_ok());
    cluster.run();

    EXPECT_EQ(cluster.running_count(), 1u) << restart_policy_name(policy);
    const Pod* pod = cluster.api().pod("trap-crun-wamr-0");
    ASSERT_NE(pod, nullptr);
    EXPECT_EQ(pod->status.restart_count, 1u) << restart_policy_name(policy);
    EXPECT_EQ(cluster.kubelet().restarts_total(), 1u);
  }
}

TEST(FaultRecoveryTest, InjectedOomKillRecoversUnderPolicyOnFailure) {
  ClusterOptions opts;
  opts.restart_policy = RestartPolicy::kOnFailure;
  Cluster cluster(opts);
  cluster.node().faults().set_rate(FaultKind::kOomKill, 1.0);
  cluster.node().faults().set_max_faults_per_target(1);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "oom").is_ok());
  cluster.run();

  EXPECT_EQ(cluster.running_count(), 1u);
  const Pod* pod = cluster.api().pod("oom-crun-wamr-0");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->status.restart_count, 1u);
  EXPECT_TRUE(pod->status.oom_killed) << "the OOM kill must be recorded";
  EXPECT_TRUE(pod->status.reason.empty()) << "recovered pods clear reason";
}

TEST(FaultRecoveryTest, ShimAndEngineFaultsRecoverOnBothCriPaths) {
  // The runc-shim path and the runwasi path take different code routes to
  // the same recovery behaviour.
  for (const DeployConfig config :
       {DeployConfig::kCrunWamr, DeployConfig::kShimWasmtime}) {
    ClusterOptions opts;
    opts.restart_policy = RestartPolicy::kOnFailure;
    Cluster cluster(opts);
    cluster.node().faults().set_rate(FaultKind::kShimCrash, 1.0);
    cluster.node().faults().set_rate(FaultKind::kEngineInstantiate, 1.0);
    cluster.node().faults().set_max_faults_per_target(1);
    ASSERT_TRUE(cluster.deploy(config, 2, "s").is_ok());
    cluster.run();
    EXPECT_EQ(cluster.running_count(), 2u) << deploy_config_name(config);
    EXPECT_EQ(cluster.failed_count(), 0u) << deploy_config_name(config);
    EXPECT_GE(cluster.node().faults().faults_injected(), 2u);
  }
}

TEST(FaultRecoveryTest, TerminalFailureReleasesSlotAndKubeletMemory) {
  // Regression: active_pods_ was never decremented and the per-pod
  // kubelet charge never returned, so failed pods permanently consumed
  // node capacity and memory.
  ClusterOptions opts;
  opts.max_pods = 2;
  Cluster cluster(opts);
  const Bytes baseline = cluster.node().memory().anon_total();
  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 1.0);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2, "bad").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.failed_count(), 2u);
  EXPECT_EQ(cluster.kubelet().active_pods(), 0u)
      << "terminal failures must release their slots";
  EXPECT_EQ(cluster.node().memory().anon_total().value, baseline.value)
      << "terminal failures must release kubelet bookkeeping + sandbox";

  // The freed capacity is reusable once the failed pods are deleted
  // (deletion also returns the scheduler binding).
  cluster.node().faults().set_rate(FaultKind::kWasmTrap, 0.0);
  ASSERT_TRUE(cluster.api().delete_pod("bad-crun-wamr-0").is_ok());
  ASSERT_TRUE(cluster.api().delete_pod("bad-crun-wamr-1").is_ok());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2, "good").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 2u);
  EXPECT_EQ(cluster.kubelet().active_pods(), 2u);
}

TEST(FaultRecoveryTest, DeletingRunningPodReleasesEverything) {
  ClusterOptions opts;
  opts.max_pods = 1;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "first").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.running_count(), 1u);
  ASSERT_EQ(cluster.cri().sandbox_count(), 1u);

  ASSERT_TRUE(cluster.api().delete_pod("first-crun-wamr-0").is_ok());
  EXPECT_EQ(cluster.kubelet().active_pods(), 0u);
  EXPECT_EQ(cluster.cri().sandbox_count(), 0u)
      << "deletion must tear down the sandbox";

  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "second").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 1u);
}

TEST(FaultRecoveryTest, PostRunningOomKillRestartsPerPolicy) {
  Cluster cluster;
  PodSpec spec;
  spec.name = "spiky";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = 32ull << 20;  // enough to start, not to spike
  spec.restart_policy = RestartPolicy::kOnFailure;
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  cluster.run();
  const Pod* pod = cluster.api().pod("spiky");
  ASSERT_NE(pod, nullptr);
  ASSERT_EQ(pod->status.phase, PodPhase::kRunning);
  const std::string first_container = pod->status.container_id;

  // The workload allocates past memory.max: kernel OOM kill (exit 137),
  // observed by the kubelet through the CRI exit watch.
  const Status oom =
      cluster.cri().grow_container_memory(first_container, Bytes(64ull << 20));
  EXPECT_EQ(oom.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(pod->status.phase, PodPhase::kCrashLoopBackOff);
  EXPECT_TRUE(pod->status.oom_killed);

  cluster.run();  // serve the backoff timer + restart
  EXPECT_EQ(pod->status.phase, PodPhase::kRunning);
  EXPECT_EQ(pod->status.restart_count, 1u);
  EXPECT_NE(pod->status.container_id, first_container);
  const auto& trace = cluster.kubelet().backoff_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].delay, sim_s(10.0));
}

TEST(FaultRecoveryTest, HealthyRunResetsBackoffCounter) {
  // With backoff_reset_after = 0, any failure after a Running phase
  // counts as "ran healthily first": the counter restarts at 1 and the
  // delay stays at the 10 s base instead of doubling.
  ClusterOptions opts;
  opts.backoff_reset_after = sim_s(0.0);
  Cluster cluster(opts);
  PodSpec spec;
  spec.name = "leaky";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = 32ull << 20;
  spec.restart_policy = RestartPolicy::kOnFailure;
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  cluster.run();

  for (int round = 0; round < 2; ++round) {
    const Pod* pod = cluster.api().pod("leaky");
    ASSERT_EQ(pod->status.phase, PodPhase::kRunning);
    EXPECT_EQ(cluster.cri()
                  .grow_container_memory(pod->status.container_id,
                                         Bytes(64ull << 20))
                  .code(),
              ErrorCode::kResourceExhausted);
    cluster.run();
  }
  const auto& trace = cluster.kubelet().backoff_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].attempt, 1u);
  EXPECT_EQ(trace[1].attempt, 1u) << "healthy run must reset the counter";
  EXPECT_EQ(trace[1].delay, sim_s(10.0)) << "delay must not double";
  EXPECT_EQ(cluster.api().pod("leaky")->status.restart_count, 2u);
}

TEST(FaultRecoveryTest, EvictionPrefersHighestUsageNoLimitPod) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);  // 250 GiB floor
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3, "mem").is_ok());
  PodSpec limited;
  limited.name = "limited";
  limited.image = "microservice:wasm";
  limited.runtime_class = "crun-wamr";
  limited.memory_limit = 64ull << 20;
  ASSERT_TRUE(cluster.deploy_pod(std::move(limited)).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.running_count(), 4u);

  // One no-limit pod balloons by 20 GiB, dragging available below the
  // eviction floor.
  const std::string hog = "mem-crun-wamr-0";
  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod(hog)->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());

  // The next admission triggers the pressure check: the hog is evicted
  // (highest usage, no limit); smaller and limited pods survive.
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "late").is_ok());
  cluster.run();

  EXPECT_EQ(cluster.kubelet().pods_evicted(), 1u);
  EXPECT_EQ(cluster.api().pod(hog)->status.phase, PodPhase::kEvicted);
  EXPECT_EQ(cluster.api().pod(hog)->status.reason, "Evicted");
  EXPECT_EQ(cluster.api().pod("mem-crun-wamr-1")->status.phase,
            PodPhase::kRunning);
  EXPECT_EQ(cluster.api().pod("mem-crun-wamr-2")->status.phase,
            PodPhase::kRunning);
  EXPECT_EQ(cluster.api().pod("limited")->status.phase, PodPhase::kRunning)
      << "pods with a memory limit keep their reservation";
  EXPECT_EQ(cluster.api().pod("late-crun-wamr-0")->status.phase,
            PodPhase::kRunning)
      << "the admission that triggered eviction must succeed";
}

TEST(FaultRecoveryTest, AllPodsRecoverUnderMixedFaults) {
  ClusterOptions opts;
  opts.restart_policy = RestartPolicy::kOnFailure;
  Cluster cluster(opts);
  cluster.node().faults().set_rate_all(0.10);
  cluster.node().faults().set_max_faults_per_target(3);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 30).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 30u) << "every pod must recover";
  EXPECT_EQ(cluster.failed_count(), 0u);
  EXPECT_GT(cluster.node().faults().faults_injected(), 0u)
      << "a 10 % rate over 30 pods must inject something";
}

TEST(FaultRecoveryTest, InterpreterStartFaultPolicyMatrix) {
  // ISSUE 3 satellite 2: the Python (crun/runc) path has its own start
  // fault — the interpreter fails to come up. It surfaces as a transient
  // kUnavailable, so every policy (including Never) retries through
  // CrashLoopBackOff and recovers once the fault cap is hit.
  for (const DeployConfig config :
       {DeployConfig::kRuncPython, DeployConfig::kCrunPython}) {
    for (const RestartPolicy policy :
         {RestartPolicy::kNever, RestartPolicy::kOnFailure,
          RestartPolicy::kAlways}) {
      ClusterOptions opts;
      opts.restart_policy = policy;
      Cluster cluster(opts);
      cluster.node().faults().set_rate(FaultKind::kInterpreterStart, 1.0);
      cluster.node().faults().set_max_faults_per_target(2);
      ASSERT_TRUE(cluster.deploy(config, 1, "py").is_ok());
      cluster.run();

      const std::string label = std::string(deploy_config_name(config)) +
                                "/" + restart_policy_name(policy);
      EXPECT_EQ(cluster.running_count(), 1u) << label;
      EXPECT_EQ(cluster.failed_count(), 0u) << label;
      EXPECT_EQ(cluster.node().faults().faults_injected(), 2u) << label;
      EXPECT_EQ(cluster.kubelet().backoff_trace().size(), 2u) << label;
      EXPECT_NE(cluster.node().faults().trace_string().find(
                    "interpreter-start"),
                std::string::npos)
          << label;
    }
  }
}

TEST(FaultRecoveryTest, InterpreterStartFaultDoesNotFireOnWasmPath) {
  Cluster cluster;
  cluster.node().faults().set_rate(FaultKind::kInterpreterStart, 1.0);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2, "w").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 2u);
  EXPECT_EQ(cluster.node().faults().faults_injected(), 0u)
      << "interpreter-start is a Python-path fault only";
}

TEST(FaultRecoveryTest, InPlaceRestartFasterThanFullRecreation) {
  // ISSUE 3 satellite 3: an OnFailure restart reuses the existing sandbox
  // (no CNI, no pause container, no RunPodSandbox cost). Two same-seed
  // clusters differing only in the knob: the in-place pod must recover
  // strictly faster.
  auto recovery_time = [](bool in_place) {
    ClusterOptions opts;
    opts.restart_policy = RestartPolicy::kOnFailure;
    opts.in_place_restart = in_place;
    Cluster cluster(opts);
    cluster.node().faults().set_rate(FaultKind::kEngineInstantiate, 1.0);
    cluster.node().faults().set_max_faults_per_target(1);
    EXPECT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "r").is_ok());
    cluster.run();
    const Pod* pod = cluster.api().pod("r-crun-wamr-0");
    EXPECT_NE(pod, nullptr);
    EXPECT_EQ(pod->status.phase, PodPhase::kRunning);
    EXPECT_EQ(pod->status.restart_count, 1u);
    EXPECT_EQ(cluster.kubelet().in_place_restarts(), in_place ? 1u : 0u);
    // Recovery latency: backoff expiry → Running again. Both runs share
    // the backoff delay, so comparing running_at isolates restart cost.
    return pod->status.running_at;
  };
  const SimTime fast = recovery_time(true);
  const SimTime slow = recovery_time(false);
  EXPECT_LT(fast, slow)
      << "in-place restart must beat full sandbox recreation";
  // The saving is at least the sandbox path's fixed latency (0.55 s sync
  // + CNI) minus the in-place sync cost (0.08 s).
  EXPECT_GE(slow - fast, sim_s(0.4));
}

TEST(FaultRecoveryTest, InPlaceRestartKeepsSandboxAndReplacesContainer) {
  ClusterOptions opts;
  opts.restart_policy = RestartPolicy::kOnFailure;
  Cluster cluster(opts);
  PodSpec spec;
  spec.name = "spiky";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = 32ull << 20;
  spec.restart_policy = RestartPolicy::kOnFailure;
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  cluster.run();
  const Pod* pod = cluster.api().pod("spiky");
  ASSERT_NE(pod, nullptr);
  const std::string sandbox_before = pod->status.sandbox_id;
  const std::string container_before = pod->status.container_id;
  ASSERT_EQ(cluster.cri().sandbox_count(), 1u);

  EXPECT_EQ(cluster.cri()
                .grow_container_memory(container_before, Bytes(64ull << 20))
                .code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(cluster.cri().sandbox_count(), 1u)
      << "the sandbox must survive the container's OOM kill";
  cluster.run();

  EXPECT_EQ(pod->status.phase, PodPhase::kRunning);
  EXPECT_EQ(pod->status.sandbox_id, sandbox_before)
      << "in-place restart must reuse the sandbox";
  EXPECT_NE(pod->status.container_id, container_before)
      << "the container itself is recreated";
  EXPECT_EQ(cluster.kubelet().in_place_restarts(), 1u);
}

TEST(FaultRecoveryTest, SameSeedIdenticalRecoveryTraces) {
  auto trace_of = [] {
    ClusterOptions opts;
    opts.restart_policy = RestartPolicy::kOnFailure;
    Cluster cluster(opts);
    cluster.node().faults().set_rate_all(0.10);
    cluster.node().faults().set_max_faults_per_target(3);
    EXPECT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 25).is_ok());
    cluster.run();
    EXPECT_EQ(cluster.running_count(), 25u);
    return std::tuple(cluster.node().faults().trace_string(),
                      cluster.kubelet().backoff_trace_string(),
                      cluster.startup_makespan());
  };
  const auto a = trace_of();
  const auto b = trace_of();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b)) << "fault plans must match";
  EXPECT_EQ(std::get<1>(a), std::get<1>(b)) << "backoff traces must match";
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

}  // namespace
}  // namespace wasmctr::k8s
