// MetricsServer / FreeProbe edge cases: empty clusters, baseline resets
// around eviction (the probe must clamp, never underflow), and top_pods
// filtering to Running pods only.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"
#include "k8s/metrics_server.hpp"

namespace wasmctr::k8s {
namespace {

TEST(MetricsProbeTest, DeltaPerContainerZeroContainersIsZero) {
  Cluster cluster;
  EXPECT_EQ(cluster.free_probe().delta_per_container(0), Bytes(0));
  // The cluster facade reads through the same guard: no pods running.
  EXPECT_EQ(cluster.free_avg_per_container(), Bytes(0));
}

TEST(MetricsProbeTest, EmptyClusterHasNoTopPodsAndZeroAverage) {
  Cluster cluster;
  EXPECT_TRUE(cluster.metrics().top_pods().empty());
  EXPECT_EQ(cluster.metrics().average_working_set(), Bytes(0));
}

TEST(MetricsProbeTest, BaselineResetAfterEvictionClampsToZero) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3, "mem").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.running_count(), 3u);

  // Rebaseline at peak usage: a hog balloons and later gets evicted, so
  // used_now drops back below this baseline.
  const std::string hog = "mem-crun-wamr-0";
  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod(hog)->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());
  cluster.free_probe().reset_baseline();
  const Bytes peak = cluster.free_probe().baseline();
  EXPECT_EQ(cluster.free_probe().delta_per_container(3), Bytes(0))
      << "no growth since the reset";

  // The next admission trips the pressure check and evicts the hog.
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "late").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.kubelet().pods_evicted(), 1u);
  ASSERT_EQ(cluster.api().pod(hog)->status.phase, PodPhase::kEvicted);

  // Usage fell ~20 GiB below the peak baseline: the probe must clamp to
  // zero instead of wrapping around the unsigned delta.
  ASSERT_LT(cluster.free_probe().used_now(), peak);
  EXPECT_EQ(cluster.free_probe().delta_per_container(
                cluster.running_count()),
            Bytes(0));

  // Re-baselining at the post-eviction level makes deltas meaningful again.
  cluster.free_probe().reset_baseline();
  EXPECT_LT(cluster.free_probe().baseline(), peak);
  EXPECT_EQ(cluster.free_probe().delta_per_container(
                cluster.running_count()),
            Bytes(0));
}

TEST(MetricsProbeTest, TopPodsExcludesNonRunningPods) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3, "mem").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.metrics().top_pods().size(), 3u);

  const std::string hog = "mem-crun-wamr-0";
  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod(hog)->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "late").is_ok());
  cluster.run();
  ASSERT_EQ(cluster.api().pod(hog)->status.phase, PodPhase::kEvicted);

  // 3 running (two survivors + the late pod); the Evicted hog is gone.
  const auto pods = cluster.metrics().top_pods();
  EXPECT_EQ(pods.size(), cluster.running_count());
  for (const PodMetrics& pm : pods) {
    EXPECT_NE(pm.pod_name, hog);
    EXPECT_GT(pm.working_set.value, 0u);
  }
}

TEST(MetricsProbeTest, TopPodsExcludesFailedPods) {
  // Over the stock 110-pod kubelet cap: rejected pods go Failed and must
  // not appear in metrics-server output or drag the average down.
  ClusterOptions stock;
  stock.max_pods = 5;
  Cluster cluster(stock);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 8).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.running_count(), 5u);
  ASSERT_EQ(cluster.failed_count(), 3u);
  EXPECT_EQ(cluster.metrics().top_pods().size(), 5u);
  EXPECT_GT(cluster.metrics().average_working_set().value, 0u);
}

}  // namespace
}  // namespace wasmctr::k8s
