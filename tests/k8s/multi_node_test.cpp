// Multi-node cluster tests: least-loaded spreading, node crash /
// partition / recovery through the full control plane (lifecycle
// controller → scheduler → deployment controller), slot accounting
// across a kill/recover cycle, and same-seed determinism.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace wasmctr::k8s {
namespace {

using serve::DeploymentSpec;
using sim::FaultKind;

DeploymentSpec wasm_deployment(const std::string& name, uint32_t replicas) {
  DeploymentSpec spec;
  spec.name = name;
  spec.replicas = replicas;
  spec.pod_template.image = "request-service:wasm";
  spec.pod_template.runtime_class = "crun-wamr";
  spec.pod_template.restart_policy = RestartPolicy::kNever;
  return spec;
}

ClusterOptions four_workers(uint64_t seed = 42) {
  ClusterOptions o;
  o.workers = 4;
  o.node.seed = seed;
  return o;
}

TEST(MultiNodeTest, SingleNodeDefaultStaysQuiescible) {
  // workers=1 must behave like the pre-multi-node cluster: no node
  // objects in the API, no heartbeat/monitor loops, run() terminates.
  Cluster cluster;
  EXPECT_EQ(cluster.worker_count(), 1u);
  EXPECT_FALSE(cluster.lifecycle_enabled());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 10).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 10u);
  EXPECT_EQ(cluster.api().node_count(), 0u);
}

TEST(MultiNodeTest, SpreadsPodsLeastLoadedAcrossWorkers) {
  Cluster cluster(four_workers());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 80).is_ok());
  cluster.run_for(sim_s(120.0));
  EXPECT_EQ(cluster.running_count(), 80u);
  for (uint32_t i = 0; i < 4; ++i) {
    const std::string name = "node-" + std::to_string(i);
    EXPECT_EQ(cluster.scheduler().node_bound(name), 20u) << name;
    EXPECT_EQ(cluster.kubelet(i).record_count(), 20u) << name;
    EXPECT_TRUE(cluster.api().node_object(name)->ready) << name;
  }
  // stdout routing resolves per-node container ids correctly.
  const auto out = cluster.pod_stdout("pod-crun-wamr-0");
  ASSERT_TRUE(out) << out.status().to_string();
}

TEST(MultiNodeTest, ShortPartitionCausesZeroChurn) {
  // Partition shorter than the 40 s grace: the control plane never even
  // notices — no NotReady, no evictions, no restarts.
  Cluster cluster(four_workers());
  ASSERT_TRUE(
      cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 40u);

  cluster.partition_node(2, sim_s(20.0));
  cluster.run_for(sim_s(120.0));
  EXPECT_EQ(cluster.lifecycle().nodes_marked_not_ready(), 0u);
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 0u);
  EXPECT_EQ(cluster.deployments().pods_gced("web"), 0u);
  EXPECT_EQ(cluster.running_count(), 40u);
  EXPECT_EQ(cluster.kubelet(2).stale_pods_gced(), 0u);
  EXPECT_FALSE(cluster.kubelet(2).partitioned());
}

TEST(MultiNodeTest, NotReadyNodeBackBeforeEvictionKeepsItsPods) {
  // Partition long enough to go NotReady but back inside the eviction
  // tolerance: the node is re-admitted and its pods never move.
  Cluster cluster(four_workers());
  ASSERT_TRUE(
      cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 40u);

  cluster.partition_node(2, sim_s(55.0));
  cluster.run_for(sim_s(150.0));
  EXPECT_GE(cluster.lifecycle().nodes_marked_not_ready(), 1u);
  EXPECT_GE(cluster.lifecycle().nodes_readmitted(), 1u);
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 0u);
  EXPECT_EQ(cluster.running_count(), 40u);
  EXPECT_EQ(cluster.scheduler().node_bound("node-2"), 10u)
      << "re-admission before eviction must not move any pod";
  EXPECT_EQ(cluster.kubelet(2).pods_recovered(), 0u);
  EXPECT_EQ(cluster.deployments().pods_gced("web"), 0u);
}

TEST(MultiNodeTest, CrashEvictsAndReschedulesOntoSurvivors) {
  Cluster cluster(four_workers());
  ASSERT_TRUE(
      cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 40u);
  ASSERT_EQ(cluster.scheduler().node_bound("node-1"), 10u);

  cluster.crash_node(1);
  // NotReady after the 40 s grace, NodeLost eviction 60 s later, then the
  // deployment controller replaces on the three surviving Ready nodes.
  cluster.run_for(sim_s(240.0));
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 10u);
  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 40u);
  EXPECT_EQ(cluster.running_count(), 40u);
  EXPECT_EQ(cluster.scheduler().node_bound("node-1"), 0u)
      << "NodeLost evictions must release the dead node's slots";
  EXPECT_EQ(cluster.scheduler().bound_count(), 40u);
  EXPECT_EQ(cluster.kubelet(1).record_count(), 0u)
      << "the crash wipes kubelet bookkeeping";
  EXPECT_EQ(cluster.kubelet(1).active_pods(), 0u);
  EXPECT_EQ(cluster.scheduler().unschedulable_count(), 0u);

  // Recovery: the node rejoins Ready but — rebalance-free, like real
  // Kubernetes — no running pod migrates back to it.
  cluster.recover_node(1);
  cluster.run_for(sim_s(60.0));
  EXPECT_TRUE(cluster.api().node_object("node-1")->ready);
  EXPECT_EQ(cluster.kubelet(1).pods_recovered(), 0u);
  EXPECT_EQ(cluster.scheduler().node_bound("node-1"), 0u);
  EXPECT_EQ(cluster.running_count(), 40u);

  // ... and it is schedulable again for new work.
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 4, "fresh").is_ok());
  cluster.run_for(sim_s(60.0));
  EXPECT_EQ(cluster.scheduler().node_bound("node-1"), 4u)
      << "the recovered (emptiest) node should take all new pods";
}

TEST(MultiNodeTest, NodeRebootRestartsSurvivingBoundPods) {
  // Crash with a restart_delay shorter than grace + tolerance: the node
  // reboots before the control plane evicts, and the kubelet re-admits
  // every pod still bound to it (full start path — sandboxes died).
  ClusterOptions o = four_workers();
  o.node_restart_delay = sim_s(30.0);
  Cluster cluster(o);
  ASSERT_TRUE(
      cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 40u);

  cluster.crash_node(3);
  EXPECT_EQ(cluster.kubelet(3).crashes(), 1u);
  cluster.run_for(sim_s(120.0));
  EXPECT_EQ(cluster.kubelet(3).pods_recovered(), 10u);
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 0u);
  EXPECT_EQ(cluster.running_count(), 40u);
  EXPECT_EQ(cluster.scheduler().node_bound("node-3"), 10u)
      << "pods stayed bound: reboot recovery, not rescheduling";
  EXPECT_EQ(cluster.kubelet(3).record_count(), 10u);
}

TEST(MultiNodeTest, EvictedThenRejoinGarbageCollectsStalePods) {
  // Partition past grace + tolerance: pods are evicted and replaced while
  // the node is away; at rejoin the kubelet GCs its zombie sandboxes.
  Cluster cluster(four_workers());
  ASSERT_TRUE(
      cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("web"), 40u);

  cluster.partition_node(2, sim_s(130.0));
  cluster.run_for(sim_s(300.0));
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 10u);
  EXPECT_GE(cluster.kubelet(2).stale_pods_gced(), 1u)
      << "rejoin must reconcile sandboxes of pods removed while away";
  EXPECT_EQ(cluster.kubelet(2).record_count(), 0u);
  EXPECT_EQ(cluster.kubelet(2).active_pods(), 0u);
  EXPECT_EQ(cluster.deployments().ready_replicas("web"), 40u);
  EXPECT_EQ(cluster.scheduler().node_bound("node-2"), 0u);
  EXPECT_EQ(cluster.scheduler().bound_count(), 40u);
  EXPECT_TRUE(cluster.api().node_object("node-2")->ready);
}

TEST(MultiNodeTest, SameSeedRunsAreByteIdentical) {
  const auto run_once = [] {
    ClusterOptions o = four_workers(/*seed=*/7);
    o.node_restart_delay = sim_s(45.0);
    Cluster cluster(o);
    cluster.faults().set_rate(FaultKind::kNodeCrash, 0.02);
    cluster.faults().set_rate(FaultKind::kNodePartition, 0.05);
    cluster.faults().set_rate_all(0.05);
    cluster.faults().set_max_faults_per_target(3);
    EXPECT_TRUE(
        cluster.deployments().create(wasm_deployment("web", 40)).is_ok());
    cluster.run_for(sim_s(400.0));
    return cluster.faults().trace_string() +
           cluster.lifecycle().trace_string() +
           cluster.deployments().trace_string() +
           cluster.endpoints().trace_string();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace wasmctr::k8s
