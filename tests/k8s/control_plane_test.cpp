// Control-plane unit tests: API server object store + watches, scheduler
// placement, metrics server filtering.
#include <gtest/gtest.h>

#include "k8s/api_server.hpp"
#include "k8s/metrics_server.hpp"
#include "k8s/scheduler.hpp"
#include "sim/node.hpp"

namespace wasmctr::k8s {
namespace {

PodSpec pod_named(const std::string& name) {
  PodSpec spec;
  spec.name = name;
  spec.image = "img";
  return spec;
}

TEST(ApiServerTest, CreateLookupDelete) {
  ApiServer api;
  ASSERT_TRUE(api.create_pod(pod_named("a")).is_ok());
  EXPECT_NE(api.pod("a"), nullptr);
  EXPECT_EQ(api.pod("b"), nullptr);
  EXPECT_EQ(api.pod_count(), 1u);
  ASSERT_TRUE(api.delete_pod("a").is_ok());
  EXPECT_EQ(api.delete_pod("a").code(), ErrorCode::kNotFound);
}

TEST(ApiServerTest, RejectsInvalidPods) {
  ApiServer api;
  EXPECT_EQ(api.create_pod(pod_named("")).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(api.create_pod(pod_named("a")).is_ok());
  EXPECT_EQ(api.create_pod(pod_named("a")).code(),
            ErrorCode::kAlreadyExists);
  PodSpec with_rc = pod_named("b");
  with_rc.runtime_class = "missing";
  EXPECT_EQ(api.create_pod(std::move(with_rc)).code(), ErrorCode::kNotFound);
}

TEST(ApiServerTest, WatchersFire) {
  ApiServer api;
  std::vector<std::string> created;
  std::vector<std::string> bound;
  api.watch_created([&](const Pod& p) { created.push_back(p.spec.name); });
  api.watch_bound([&](const Pod& p) { bound.push_back(p.status.node); });
  ASSERT_TRUE(api.create_pod(pod_named("a")).is_ok());
  ASSERT_TRUE(api.bind_pod("a", "node-7").is_ok());
  EXPECT_EQ(created, (std::vector<std::string>{"a"}));
  EXPECT_EQ(bound, (std::vector<std::string>{"node-7"}));
  EXPECT_EQ(api.pod("a")->status.phase, PodPhase::kScheduled);
}

TEST(ApiServerTest, DoubleBindRejected) {
  ApiServer api;
  ASSERT_TRUE(api.create_pod(pod_named("a")).is_ok());
  ASSERT_TRUE(api.bind_pod("a", "n1").is_ok());
  EXPECT_EQ(api.bind_pod("a", "n2").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(api.bind_pod("ghost", "n1").code(), ErrorCode::kNotFound);
}

TEST(ApiServerTest, RuntimeClasses) {
  ApiServer api;
  ASSERT_TRUE(api.create_runtime_class({"crun-wamr", "crun-wamr"}).is_ok());
  EXPECT_EQ(api.create_runtime_class({"crun-wamr", "x"}).code(),
            ErrorCode::kAlreadyExists);
  ASSERT_NE(api.runtime_class("crun-wamr"), nullptr);
  EXPECT_EQ(api.runtime_class("nope"), nullptr);
}

TEST(SchedulerTest, SpreadsAcrossNodes) {
  sim::Kernel kernel;
  ApiServer api;
  Scheduler sched(kernel, api);
  sched.add_node("n1", 100);
  sched.add_node("n2", 100);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(api.create_pod(pod_named("p" + std::to_string(i))).is_ok());
  }
  kernel.run();
  int on_n1 = 0;
  int on_n2 = 0;
  for (const Pod* p : api.pods()) {
    EXPECT_EQ(p->status.phase, PodPhase::kScheduled);
    (p->status.node == "n1" ? on_n1 : on_n2)++;
  }
  EXPECT_EQ(on_n1, 5) << "least-loaded placement must balance";
  EXPECT_EQ(on_n2, 5);
  EXPECT_EQ(sched.bound_count(), 10u);
}

TEST(SchedulerTest, CapacityExhaustionFailsPods) {
  sim::Kernel kernel;
  ApiServer api;
  Scheduler sched(kernel, api);
  sched.add_node("n1", 3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(api.create_pod(pod_named("p" + std::to_string(i))).is_ok());
  }
  kernel.run();
  EXPECT_EQ(sched.bound_count(), 3u);
  EXPECT_EQ(sched.unschedulable_count(), 2u);
  int failed = 0;
  for (const Pod* p : api.pods()) {
    if (p->status.phase == PodPhase::kFailed) {
      ++failed;
      // Per-node reason enumeration, kubectl-style.
      EXPECT_EQ(p->status.message, "0/1 nodes available: 1 Full");
    }
  }
  EXPECT_EQ(failed, 2);
}

TEST(SchedulerTest, NoNodesMeansEverythingUnschedulable) {
  sim::Kernel kernel;
  ApiServer api;
  Scheduler sched(kernel, api);
  ASSERT_TRUE(api.create_pod(pod_named("p")).is_ok());
  kernel.run();
  EXPECT_EQ(sched.unschedulable_count(), 1u);
}

TEST(MetricsServerTest, ReportsOnlyRunningPodsWithCgroups) {
  sim::Node node;
  ApiServer api;
  MetricsServer metrics(api, node);
  ASSERT_TRUE(api.create_pod(pod_named("p1")).is_ok());
  EXPECT_TRUE(metrics.top_pods().empty());
  // Fake a running pod with a charged cgroup.
  api.pod("p1")->status.phase = PodPhase::kRunning;
  mem::Cgroup& cg = node.cgroups().ensure("kubepods/pod-p1");
  ASSERT_TRUE(cg.charge_anon(Bytes(5_MiB)).is_ok());
  ASSERT_TRUE(cg.charge_file_inactive(Bytes(2_MiB)).is_ok());
  auto top = metrics.top_pods();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].working_set.value, 5_MiB);
  EXPECT_EQ(top[0].usage.value, 7_MiB);
  EXPECT_EQ(metrics.average_working_set().value, 5_MiB);
}

TEST(FreeProbeTest, DeltaPerContainer) {
  sim::Node node;
  FreeProbe probe(node);
  ASSERT_TRUE(node.memory().charge_anon(Bytes(30_MiB), nullptr).is_ok());
  EXPECT_EQ(probe.delta_per_container(10).value, 3_MiB);
  EXPECT_EQ(probe.delta_per_container(0).value, 0u);
  probe.reset_baseline();
  EXPECT_EQ(probe.delta_per_container(10).value, 0u);
}

TEST(FreeProbeTest, IncludesPageCache) {
  sim::Node node;
  FreeProbe probe(node);
  const mem::FileId img = node.memory().new_file_id();
  ASSERT_TRUE(node.memory().cache_file(img, Bytes(10_MiB), nullptr).is_ok());
  EXPECT_EQ(probe.delta_per_container(10).value, 1_MiB)
      << "free methodology counts buff/cache (paper §IV-B)";
}

}  // namespace
}  // namespace wasmctr::k8s
