// NodeLifecycleController unit tests: heartbeat-age → Ready condition,
// the eviction tolerance window, and re-admission cancelling eviction.
#include "k8s/node_lifecycle.hpp"

#include <gtest/gtest.h>

#include "k8s/api_server.hpp"

namespace wasmctr::k8s {
namespace {

Pod* running_pod_on(ApiServer& api, const std::string& name,
                    const std::string& node) {
  PodSpec spec;
  spec.name = name;
  spec.image = "img";
  EXPECT_TRUE(api.create_pod(std::move(spec)).is_ok());
  // Bind through the API server (like the scheduler does) so the per-node
  // pod index the eviction path walks knows about the pod.
  EXPECT_TRUE(api.bind_pod(name, node).is_ok());
  Pod* p = api.pod(name);
  EXPECT_NE(p, nullptr);
  p->status.phase = PodPhase::kRunning;
  return p;
}

TEST(NodeLifecycleTest, StaleHeartbeatMarksNotReadyThenEvicts) {
  sim::Kernel kernel;
  ApiServer api;
  NodeLifecycleController ctl(kernel, api, nullptr);
  ASSERT_TRUE(api.register_node("n1", 110, kernel.now()).is_ok());
  running_pod_on(api, "p1", "n1");
  ctl.start();

  // Heartbeat at t=0, grace 40 s: still Ready at t=30.
  kernel.run_until(sim_s(30.0));
  EXPECT_TRUE(api.node_object("n1")->ready);
  EXPECT_EQ(ctl.nodes_marked_not_ready(), 0u);

  // First monitor tick past t=40 flips it; the pod is not yet evicted.
  kernel.run_until(sim_s(50.0));
  EXPECT_FALSE(api.node_object("n1")->ready);
  EXPECT_EQ(api.node_object("n1")->condition_reason,
            "KubeletHeartbeatStale");
  EXPECT_EQ(ctl.nodes_marked_not_ready(), 1u);
  EXPECT_EQ(ctl.pods_evicted(), 0u);
  EXPECT_EQ(api.pod("p1")->status.phase, PodPhase::kRunning);

  // NotReady for the 60 s tolerance window → NodeLost eviction.
  kernel.run_until(sim_s(120.0));
  EXPECT_EQ(ctl.pods_evicted(), 1u);
  EXPECT_EQ(api.pod("p1")->status.phase, PodPhase::kEvicted);
  EXPECT_EQ(api.pod("p1")->status.reason, "NodeLost");
  ctl.stop();
}

TEST(NodeLifecycleTest, HeartbeatBeforeToleranceReadmitsWithZeroChurn) {
  sim::Kernel kernel;
  ApiServer api;
  NodeLifecycleController ctl(kernel, api, nullptr);
  ASSERT_TRUE(api.register_node("n1", 110, kernel.now()).is_ok());
  running_pod_on(api, "p1", "n1");
  ctl.start();

  kernel.run_until(sim_s(50.0));  // NotReady at the t=45 tick
  ASSERT_FALSE(api.node_object("n1")->ready);

  // The kubelet comes back at t=60 — before the eviction tolerance runs
  // out. Re-admission cancels the pending eviction: zero pod churn.
  kernel.schedule_after(sim_s(10.0),
                        [&] { (void)api.node_heartbeat("n1", kernel.now()); });
  kernel.run_until(sim_s(90.0));
  EXPECT_TRUE(api.node_object("n1")->ready);
  EXPECT_EQ(ctl.nodes_readmitted(), 1u);
  EXPECT_EQ(ctl.pods_evicted(), 0u);
  EXPECT_EQ(api.pod("p1")->status.phase, PodPhase::kRunning);
  ctl.stop();
}

TEST(NodeLifecycleTest, TraceRecordsTransitionsInOrder) {
  sim::Kernel kernel;
  ApiServer api;
  NodeLifecycleController ctl(kernel, api, nullptr);
  ASSERT_TRUE(api.register_node("n1", 110, kernel.now()).is_ok());
  ctl.start();
  kernel.schedule_after(sim_s(50.0),
                        [&] { (void)api.node_heartbeat("n1", kernel.now()); });
  kernel.run_until(sim_s(60.0));
  ctl.stop();
  // NotReady at the t=45 tick (hb_age 45 s), Ready again at t=50 or 55.
  EXPECT_NE(ctl.trace_string().find("node=n1 NotReady hb_age=45.000s"),
            std::string::npos);
  EXPECT_NE(ctl.trace_string().find("node=n1 Ready"), std::string::npos);
}

TEST(NodeLifecycleTest, StopCancelsTheMonitorLoop) {
  sim::Kernel kernel;
  ApiServer api;
  NodeLifecycleController ctl(kernel, api, nullptr);
  ASSERT_TRUE(api.register_node("n1", 110, kernel.now()).is_ok());
  ctl.start();
  ctl.stop();
  kernel.run();  // must terminate: no self-rescheduling tick left
  EXPECT_TRUE(api.node_object("n1")->ready);
}

}  // namespace
}  // namespace wasmctr::k8s
