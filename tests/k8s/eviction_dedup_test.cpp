// Regression tests for the deferral pile-up fix: the DisruptionGate's
// pending-deferral registry, and the kubelet rule that only a *fresh*
// deferral arms the pressure-eviction backoff retry — a pod already
// deferred on the NodeLost path (retried by the lifecycle controller's
// monitor tick) must not get a second, duplicate retry enqueued.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"
#include "k8s/disruption.hpp"

namespace wasmctr::k8s {
namespace {

[[nodiscard]] PodSpec service_pod(const std::string& name,
                                  uint64_t memory_limit = 0) {
  PodSpec spec;
  spec.name = name;
  spec.image = "request-service:wasm";
  spec.runtime_class = "crun-wamr";
  spec.labels = {{"app", "guarded"}};
  spec.memory_limit = memory_limit;
  return spec;
}

// A pod that drives an admission-time pressure scan without becoming an
// eviction candidate (it has a memory limit) and without matching the
// guard PDB (going Running must not top up the victim's budget).
[[nodiscard]] PodSpec trigger_pod(const std::string& name) {
  PodSpec spec = service_pod(name, 64ull << 20);
  spec.labels = {{"app", "trigger"}};
  return spec;
}

[[nodiscard]] ClusterOptions pressured_options() {
  ClusterOptions opts;
  // Floor at physical RAM: `available` can never satisfy it, so every
  // admission-triggered scan sees pressure and walks the candidate list.
  opts.eviction_min_available = opts.node.ram;
  return opts;
}

void install_guard_pdb(Cluster& cluster, uint32_t min_available) {
  PodDisruptionBudget pdb;
  pdb.name = "guard";
  pdb.selector = {{"app", "guarded"}};
  pdb.min_available = min_available;
  ASSERT_TRUE(cluster.api().create_pod_disruption_budget(pdb).is_ok());
}

TEST(EvictionDedupTest, GateTracksPendingDeferralsPerPod) {
  Cluster cluster;
  install_guard_pdb(cluster, 2);
  ASSERT_TRUE(cluster.deploy_pod(service_pod("pa")).is_ok());
  ASSERT_TRUE(cluster.deploy_pod(service_pod("pb")).is_ok());
  cluster.run();
  DisruptionGate& gate = cluster.disruption_gate();
  EXPECT_FALSE(gate.deferral_pending("pa"));

  // Two Running matching pods at minAvailable 2: any eviction is denied
  // and leaves a pending-deferral mark.
  EXPECT_FALSE(gate.allow_eviction(*cluster.api().pod("pa"), "NodeLost"));
  EXPECT_TRUE(gate.deferral_pending("pa"));
  EXPECT_FALSE(gate.deferral_pending("pb"));
  EXPECT_EQ(gate.deferrals(), 1u);

  // A third Running pod restores the budget: the retried eviction is
  // admitted and the mark clears.
  ASSERT_TRUE(cluster.deploy_pod(service_pod("pc")).is_ok());
  cluster.run();
  EXPECT_TRUE(gate.allow_eviction(*cluster.api().pod("pa"), "NodeLost"));
  EXPECT_FALSE(gate.deferral_pending("pa"));
}

TEST(EvictionDedupTest, DeletingADeferredPodClearsItsMark) {
  Cluster cluster;
  install_guard_pdb(cluster, 1);
  ASSERT_TRUE(cluster.deploy_pod(service_pod("lone")).is_ok());
  cluster.run();
  DisruptionGate& gate = cluster.disruption_gate();
  ASSERT_FALSE(gate.allow_eviction(*cluster.api().pod("lone"), "NodeLost"));
  ASSERT_TRUE(gate.deferral_pending("lone"));

  ASSERT_TRUE(cluster.api().delete_pod("lone").is_ok());
  EXPECT_FALSE(gate.deferral_pending("lone"))
      << "a deleted pod can never be retried; a later pod reusing the "
         "name must start clean";
}

TEST(EvictionDedupTest, FreshPressureDeferralArmsExactlyOneRetry) {
  Cluster cluster(pressured_options());
  install_guard_pdb(cluster, 1);
  // The only matching no-limit Running pod: pressure wants it, the PDB
  // denies it (1 running == minAvailable 1), so the scan defers.
  ASSERT_TRUE(cluster.deploy_pod(service_pod("victim")).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.api().pod("victim")->status.phase, PodPhase::kRunning);
  ASSERT_FALSE(cluster.kubelet().eviction_retry_pending());

  // An admission triggers the pressure scan. The trigger pod carries a
  // memory limit so it never becomes an eviction candidate itself. One
  // second covers bind + sync while staying under the 10 s retry period.
  ASSERT_TRUE(
      cluster.deploy_pod(trigger_pod("trigger")).is_ok());
  cluster.run_for(sim_s(1.0));
  EXPECT_TRUE(cluster.kubelet().eviction_retry_pending())
      << "a fresh deferral must arm the backoff retry";
  EXPECT_TRUE(cluster.disruption_gate().deferral_pending("victim"));
  const uint32_t deferrals = cluster.disruption_gate().deferrals();
  EXPECT_GE(deferrals, 1u);

  // This path owns the deferral, so the loop stays alive: the retry
  // fires after eviction_retry_period, re-scans, defers again, and
  // re-arms exactly one successor — at most one retry in flight at any
  // time (the pending flag gates schedule_eviction_retry), never a
  // second parallel chain.
  EXPECT_EQ(cluster.disruption_gate().deferral_owner("victim"),
            "NodePressure");
  cluster.run_for(cluster.kubelet().config().eviction_retry_period +
                  sim_s(1.0));
  EXPECT_TRUE(cluster.kubelet().eviction_retry_pending())
      << "an own-path deferral must keep the backoff loop alive until "
         "pressure relents or the budget frees";
  EXPECT_GT(cluster.disruption_gate().deferrals(), deferrals)
      << "the armed retry itself must have re-run the scan once";
  EXPECT_EQ(cluster.kubelet().pods_evicted(), 0u);
  EXPECT_EQ(cluster.api().pod("victim")->status.phase, PodPhase::kRunning);
}

TEST(EvictionDedupTest, NodeLostDeferralSuppressesPressureRetry) {
  // The cross-path pile-up regression: the pod is already deferred via
  // the NodeLost path (lifecycle controller retries it every monitor
  // tick) when the kubelet's pressure scan hits it. The scan must still
  // count the deferral but must NOT arm its own duplicate backoff retry.
  Cluster cluster(pressured_options());
  install_guard_pdb(cluster, 1);
  ASSERT_TRUE(cluster.deploy_pod(service_pod("victim")).is_ok());
  cluster.run();
  ASSERT_EQ(cluster.api().pod("victim")->status.phase, PodPhase::kRunning);

  // The NodeLost path defers first (exactly the call the lifecycle
  // controller makes on its tick).
  ASSERT_FALSE(cluster.disruption_gate().allow_eviction(
      *cluster.api().pod("victim"), "NodeLost"));
  ASSERT_TRUE(cluster.disruption_gate().deferral_pending("victim"));
  ASSERT_FALSE(cluster.kubelet().eviction_retry_pending());

  ASSERT_TRUE(
      cluster.deploy_pod(trigger_pod("trigger")).is_ok());
  cluster.run_for(sim_s(1.0));
  EXPECT_FALSE(cluster.kubelet().eviction_retry_pending())
      << "a pod deferred on the NodeLost path must not also arm the "
         "kubelet's pressure retry (double-enqueue)";
  EXPECT_GE(cluster.disruption_gate().deferrals(), 2u)
      << "the pressure scan still records its deferral";
}

TEST(EvictionDedupTest, NodeCrashClearsTheRetryFlag) {
  Cluster cluster(pressured_options());
  install_guard_pdb(cluster, 1);
  ASSERT_TRUE(cluster.deploy_pod(service_pod("victim")).is_ok());
  cluster.run();
  ASSERT_TRUE(
      cluster.deploy_pod(trigger_pod("trigger")).is_ok());
  cluster.run_for(sim_s(1.0));
  ASSERT_TRUE(cluster.kubelet().eviction_retry_pending());

  // The in-flight retry carries the old epoch; crash() must reset the
  // flag so a post-recover deferral can arm a fresh, current-epoch retry
  // (the stale one is a no-op and must not clear the fresh one's flag).
  cluster.kubelet().crash();
  EXPECT_FALSE(cluster.kubelet().eviction_retry_pending());
  cluster.run();
  EXPECT_FALSE(cluster.kubelet().eviction_retry_pending())
      << "the stale pre-crash retry must not touch the flag when it fires";
}

}  // namespace
}  // namespace wasmctr::k8s
