// Multi-tenant isolation tests (ISSUE 7): PodDisruptionBudget objects,
// the shared eviction gate across the NodeLost and node-pressure paths,
// deterministic pressure-eviction ordering, tenant threading, and the
// acceptance scenario — a simultaneous two-node partition plus a
// pressure wave must never take a PDB-protected Deployment's Ready
// endpoints below minAvailable, while the same wave without a PDB
// reproduces the empty-endpoints failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "k8s/cluster.hpp"
#include "serve/traffic.hpp"

namespace wasmctr::k8s {
namespace {

using serve::DeploymentSpec;

DeploymentSpec tenant_deployment(const std::string& name, uint32_t replicas,
                                 const std::string& tenant) {
  DeploymentSpec spec;
  spec.name = name;
  spec.replicas = replicas;
  spec.pod_template.image = "request-service:wasm";
  spec.pod_template.runtime_class = "crun-wamr";
  spec.pod_template.restart_policy = RestartPolicy::kNever;
  spec.pod_template.tenant = tenant;
  return spec;
}

PodSpec limited_pod(const std::string& name, uint64_t limit,
                    const std::string& tenant = "") {
  PodSpec spec;
  spec.name = name;
  spec.image = "request-service:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = limit;
  spec.tenant = tenant;
  return spec;
}

PodDisruptionBudget pdb_for(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> selector,
    uint32_t min_available) {
  PodDisruptionBudget pdb;
  pdb.name = name;
  pdb.selector = std::move(selector);
  pdb.min_available = min_available;
  return pdb;
}

/// Replay an endpoints trace for one Service and return the lowest ready
/// count observed at or after the moment the count first reached `full`
/// (-1 when `full` was never reached).
int min_ready_after_full(const std::string& trace, const std::string& svc,
                         int full) {
  const std::string key = "svc=" + svc + " ";
  int count = 0;
  int min_seen = full;
  bool reached_full = false;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find(key);
    if (pos == std::string::npos) continue;
    count += line[pos + key.size()] == '+' ? 1 : -1;
    if (count >= full) reached_full = true;
    if (reached_full) min_seen = std::min(min_seen, count);
  }
  return reached_full ? min_seen : -1;
}

TEST(IsolationTest, PdbCreateValidatesAndListsByName) {
  ApiServer api;
  EXPECT_EQ(api.create_pod_disruption_budget(pdb_for("", {{"a", "b"}}, 1))
                .code(),
            ErrorCode::kInvalidArgument)
      << "a PDB needs a name";
  EXPECT_EQ(api.create_pod_disruption_budget(pdb_for("x", {}, 1)).code(),
            ErrorCode::kInvalidArgument)
      << "a PDB needs a selector";
  ASSERT_TRUE(api.create_pod_disruption_budget(pdb_for("zz", {{"a", "b"}}, 2))
                  .is_ok());
  ASSERT_TRUE(api.create_pod_disruption_budget(pdb_for("aa", {{"a", "b"}}, 1))
                  .is_ok());
  EXPECT_EQ(api.create_pod_disruption_budget(pdb_for("aa", {{"c", "d"}}, 1))
                .code(),
            ErrorCode::kAlreadyExists);
  ASSERT_NE(api.pod_disruption_budget("aa"), nullptr);
  EXPECT_EQ(api.pod_disruption_budget("aa")->min_available, 1u);
  EXPECT_EQ(api.pod_disruption_budget("nope"), nullptr);
  const auto all = api.pod_disruption_budgets();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "aa");
  EXPECT_EQ(all[1]->name, "zz");
}

TEST(IsolationTest, PressureEvictionDefersAtPdbFloorAndRetriesWhenFreed) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  Service svc;
  svc.name = "web-svc";
  svc.selector = {{"app", "web"}};
  ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
  ASSERT_TRUE(cluster.deployments()
                  .create(tenant_deployment("web", 3, "acme"))
                  .is_ok());
  ASSERT_TRUE(cluster.api()
                  .create_pod_disruption_budget(
                      pdb_for("web-pdb", {{"app", "web"}}, 3))
                  .is_ok());
  cluster.run();
  ASSERT_EQ(cluster.endpoints().endpoints("web-svc")->ready.size(), 3u);

  // A 20 GiB allocation spike drives available below the floor; the pod
  // is BestEffort, so it is the top-ranked eviction candidate — but the
  // budget protects all three replicas.
  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod("web-00000")->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());
  ASSERT_TRUE(cluster.deploy_pod(limited_pod("late", 1ull << 30)).is_ok());
  cluster.run_for(sim_s(25.0));  // admission scan + two retry scans

  EXPECT_EQ(cluster.kubelet().pods_evicted(), 0u)
      << "every candidate is under budget: nothing may be evicted";
  EXPECT_GE(cluster.disruption_gate().deferrals(), 3u)
      << "each scan defers each protected candidate";
  EXPECT_EQ(cluster.endpoints().endpoints("web-svc")->ready.size(), 3u);
  const auto* deferrals = cluster.obs().metrics.find_counter(
      "wasmctr_eviction_deferrals_total", "reason=\"NodePressure\"");
  ASSERT_NE(deferrals, nullptr);
  EXPECT_GE(deferrals->value(), 3.0);
  EXPECT_NE(cluster.disruption_gate().trace_string().find(
                "pdb=web-pdb defer pod=web-00000 reason=NodePressure"),
            std::string::npos)
      << cluster.disruption_gate().trace_string();

  // A fourth Ready pod matching the selector frees the budget: the next
  // retry scan may now evict one pod, and it takes the hog.
  PodSpec extra = limited_pod("web-extra", 1ull << 30, "acme");
  extra.labels = {{"app", "web"}};
  ASSERT_TRUE(cluster.deploy_pod(std::move(extra)).is_ok());
  cluster.run_for(sim_s(25.0));
  EXPECT_EQ(cluster.kubelet().pods_evicted(), 1u)
      << "the freed budget must let exactly one eviction through";
  // The deployment controller GCs the evicted replica: it is either
  // already deleted or still terminal — but never Running.
  const Pod* hog = cluster.api().pod("web-00000");
  EXPECT_TRUE(hog == nullptr || hog->status.phase == PodPhase::kEvicted)
      << "the eviction must take the highest-usage BestEffort pod";
  EXPECT_GE(cluster.endpoints().endpoints("web-svc")->ready.size(), 3u);
}

TEST(IsolationTest, ZeroMinAvailablePdbNeverDefers) {
  ClusterOptions opts;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.deployments()
                  .create(tenant_deployment("web", 2, "acme"))
                  .is_ok());
  ASSERT_TRUE(cluster.api()
                  .create_pod_disruption_budget(
                      pdb_for("noop-pdb", {{"app", "web"}}, 0))
                  .is_ok());
  cluster.run();
  ASSERT_TRUE(cluster.cri()
                  .grow_container_memory(
                      cluster.api().pod("web-00000")->status.container_id,
                      Bytes(20ull << 30))
                  .is_ok());
  ASSERT_TRUE(cluster.deploy_pod(limited_pod("late", 1ull << 30)).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.kubelet().pods_evicted(), 1u);
  EXPECT_EQ(cluster.disruption_gate().deferrals(), 0u)
      << "minAvailable 0 must be a no-op gate";
}

TEST(IsolationTest, PressureEvictionOrdersByUsageDescendingThenName) {
  // Two grown pods with EQUAL usage: the tie must break on pod name
  // (ascending), not on container-map iteration luck.
  {
    ClusterOptions opts;
    opts.eviction_min_available = Bytes(250ull << 30);
    Cluster cluster(opts);
    Service svc;
    svc.name = "trio-svc";
    svc.selector = {{"app", "trio"}};
    ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
    for (const char* name : {"pa", "pb", "pc"}) {
      PodSpec spec;
      spec.name = name;
      spec.image = "request-service:wasm";
      spec.runtime_class = "crun-wamr";
      spec.labels = {{"app", "trio"}};
      ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
    }
    cluster.run();
    for (const char* name : {"pb", "pc"}) {
      ASSERT_TRUE(cluster.cri()
                      .grow_container_memory(
                          cluster.api().pod(name)->status.container_id,
                          Bytes(20ull << 30))
                      .is_ok());
    }
    ASSERT_TRUE(cluster.deploy_pod(limited_pod("late", 1ull << 30)).is_ok());
    cluster.run();
    const std::string& trace = cluster.endpoints().trace_string();
    const auto pb = trace.find("-pb");
    const auto pc = trace.find("-pc");
    ASSERT_NE(pb, std::string::npos);
    ASSERT_NE(pc, std::string::npos);
    EXPECT_LT(pb, pc) << "equal usage must evict in pod-name order";
    EXPECT_EQ(trace.find("-pa"), std::string::npos)
        << "the small pod must survive the wave";
  }
  // Unequal usage: strictly highest usage first, regardless of name.
  {
    ClusterOptions opts;
    opts.eviction_min_available = Bytes(250ull << 30);
    Cluster cluster(opts);
    Service svc;
    svc.name = "trio-svc";
    svc.selector = {{"app", "trio"}};
    ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
    for (const char* name : {"pa", "pb", "pc"}) {
      PodSpec spec;
      spec.name = name;
      spec.image = "request-service:wasm";
      spec.runtime_class = "crun-wamr";
      spec.labels = {{"app", "trio"}};
      ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
    }
    cluster.run();
    ASSERT_TRUE(cluster.cri()
                    .grow_container_memory(
                        cluster.api().pod("pb")->status.container_id,
                        Bytes(20ull << 30))
                    .is_ok());
    ASSERT_TRUE(cluster.cri()
                    .grow_container_memory(
                        cluster.api().pod("pc")->status.container_id,
                        Bytes(25ull << 30))
                    .is_ok());
    ASSERT_TRUE(cluster.deploy_pod(limited_pod("late", 1ull << 30)).is_ok());
    cluster.run();
    const std::string& trace = cluster.endpoints().trace_string();
    const auto pb = trace.find("-pb");
    const auto pc = trace.find("-pc");
    ASSERT_NE(pb, std::string::npos);
    ASSERT_NE(pc, std::string::npos);
    EXPECT_LT(pc, pb) << "the bigger hog must be evicted first";
  }
}

TEST(IsolationTest, NodeLostEvictionRespectsPdbFloor) {
  // Three of four nodes partitioned past the eviction tolerance: the
  // lifecycle controller may evict down to minAvailable and no further;
  // the third dead-node pod waits until replacements restore the budget.
  ClusterOptions opts;
  opts.workers = 4;
  opts.node.seed = 42;
  Cluster cluster(opts);
  Service svc;
  svc.name = "victim-svc";
  svc.selector = {{"app", "victim"}};
  ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
  ASSERT_TRUE(cluster.deployments()
                  .create(tenant_deployment("victim", 4, "acme"))
                  .is_ok());
  cluster.run_for(sim_s(60.0));
  ASSERT_EQ(cluster.deployments().ready_replicas("victim"), 4u);
  ASSERT_TRUE(cluster.api()
                  .create_pod_disruption_budget(
                      pdb_for("victim-pdb", {{"tenant", "acme"}}, 2))
                  .is_ok());

  cluster.partition_node(1, sim_s(200.0));
  cluster.partition_node(2, sim_s(200.0));
  cluster.partition_node(3, sim_s(200.0));
  cluster.run_for(sim_s(300.0));

  EXPECT_GE(cluster.lifecycle().evictions_deferred(), 1u)
      << "the third dead-node pod must have been deferred at the floor";
  EXPECT_EQ(cluster.lifecycle().pods_evicted(), 3u)
      << "all dead-node pods are eventually evicted once replacements "
         "restore the budget";
  EXPECT_GE(min_ready_after_full(cluster.endpoints().trace_string(),
                                 "victim-svc", 4),
            2)
      << cluster.endpoints().trace_string();
  EXPECT_GE(cluster.deployments().ready_replicas("victim"), 4u);
}

struct WaveResult {
  int min_ready = -1;
  uint32_t gate_deferrals = 0;
  uint32_t lifecycle_deferred = 0;
  uint32_t lifecycle_evicted = 0;
  std::size_t final_ready = 0;
  std::string traces;
};

/// The acceptance scenario: a 4-replica victim Deployment spread over 4
/// nodes, one limited noisy-neighbor pod per node, then simultaneously
/// (a) partition nodes 2 and 3 past grace + tolerance and (b) blow the
/// noisy tenants on the two survivors past the pressure floor.
WaveResult run_partition_plus_pressure_wave(bool with_pdb,
                                            uint64_t seed = 42) {
  WaveResult r;
  ClusterOptions opts;
  opts.workers = 4;
  opts.node.seed = seed;
  opts.eviction_min_available = Bytes(250ull << 30);
  Cluster cluster(opts);
  Service svc;
  svc.name = "victim-svc";
  svc.selector = {{"app", "victim"}};
  EXPECT_TRUE(cluster.api().create_service(svc).is_ok());
  EXPECT_TRUE(cluster.deployments()
                  .create(tenant_deployment("victim", 4, "acme"))
                  .is_ok());
  cluster.run_for(sim_s(30.0));
  EXPECT_EQ(cluster.deployments().ready_replicas("victim"), 4u);
  // One memory-limited aggressor per node: limited pods are never
  // pressure-eviction candidates, so their spike cannot self-relieve.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster
                    .deploy_pod(limited_pod("hog-" + std::to_string(i),
                                            64ull << 30, "noisy"))
                    .is_ok());
  }
  cluster.run_for(sim_s(30.0));
  if (with_pdb) {
    EXPECT_TRUE(cluster.api()
                    .create_pod_disruption_budget(
                        pdb_for("victim-pdb", {{"tenant", "acme"}}, 2))
                    .is_ok());
  }

  cluster.partition_node(2, sim_s(200.0));
  cluster.partition_node(3, sim_s(200.0));
  for (int i = 0; i < 4; ++i) {
    const Pod* hog = cluster.api().pod("hog-" + std::to_string(i));
    EXPECT_NE(hog, nullptr);
    if (hog == nullptr) continue;
    if (hog->status.node != "node-0" && hog->status.node != "node-1") {
      continue;
    }
    auto* cri = cluster.cri_for(hog->status.node);
    EXPECT_NE(cri, nullptr);
    EXPECT_TRUE(cri->grow_container_memory(hog->status.container_id,
                                           Bytes(20ull << 30))
                    .is_ok());
  }
  cluster.run_for(sim_s(340.0));

  r.min_ready = min_ready_after_full(cluster.endpoints().trace_string(),
                                     "victim-svc", 4);
  r.gate_deferrals = cluster.disruption_gate().deferrals();
  r.lifecycle_deferred = cluster.lifecycle().evictions_deferred();
  r.lifecycle_evicted = cluster.lifecycle().pods_evicted();
  const Endpoints* eps = cluster.endpoints().endpoints("victim-svc");
  r.final_ready = eps == nullptr ? 0 : eps->ready.size();
  r.traces = cluster.disruption_gate().trace_string() +
             cluster.lifecycle().trace_string() +
             cluster.endpoints().trace_string() +
             cluster.deployments().trace_string();
  return r;
}

TEST(IsolationTest, PdbHoldsEndpointsFloorUnderPartitionPlusPressureWave) {
  const WaveResult r = run_partition_plus_pressure_wave(/*with_pdb=*/true);
  EXPECT_GE(r.min_ready, 2)
      << "the PDB must hold the victim's Ready endpoints at minAvailable";
  EXPECT_GT(r.gate_deferrals, 0u)
      << "the wave must actually have been stopped by the gate";
  // Replacement churn keeps availability above the floor by the time the
  // NodeLost tick fires, so its deferral count may be zero here; the
  // dedicated NodeLostEvictionRespectsPdbFloor test pins that path.
  EXPECT_GE(r.lifecycle_evicted, 2u)
      << "the dead nodes' pods must still be evicted once over the floor";
  EXPECT_GE(r.final_ready, 2u);
}

TEST(IsolationTest, WithoutPdbSameWaveBreaksEndpointsFloor) {
  const WaveResult r = run_partition_plus_pressure_wave(/*with_pdb=*/false);
  EXPECT_LT(r.min_ready, 2)
      << "without a budget the same wave must break the floor";
  EXPECT_EQ(r.gate_deferrals, 0u);
  EXPECT_GE(r.lifecycle_evicted, 2u);
}

TEST(IsolationTest, SameSeedIsolationWavesAreByteIdentical) {
  const WaveResult a = run_partition_plus_pressure_wave(true, 7);
  const WaveResult b = run_partition_plus_pressure_wave(true, 7);
  ASSERT_FALSE(a.traces.empty());
  EXPECT_EQ(a.traces, b.traces)
      << "gate + lifecycle + endpoints + deployment traces must be "
         "bit-identical across same-seed runs";
  EXPECT_EQ(a.gate_deferrals, b.gate_deferrals);
  EXPECT_EQ(a.min_ready, b.min_ready);
}

TEST(IsolationTest, TenantThreadsThroughPodsLabelsAndMetrics) {
  Cluster cluster;
  Service svc;
  svc.name = "web-svc";
  svc.selector = {{"app", "web"}};
  ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
  ASSERT_TRUE(cluster.deployments()
                  .create(tenant_deployment("web", 2, "acme"))
                  .is_ok());
  cluster.run();

  const Pod* pod = cluster.api().pod("web-00000");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->spec.tenant, "acme");
  const auto& labels = pod->spec.labels;
  EXPECT_NE(std::find(labels.begin(), labels.end(),
                      std::make_pair(std::string("tenant"),
                                     std::string("acme"))),
            labels.end())
      << "the deployment must stamp the tenant label on its pods";

  const auto* started = cluster.obs().metrics.find_counter(
      "wasmctr_tenant_pods_started_total", "tenant=\"acme\"");
  ASSERT_NE(started, nullptr);
  EXPECT_EQ(started->value(), 2.0);

  serve::TrafficOptions traffic;
  traffic.service = "web-svc";
  traffic.total_requests = 20;
  traffic.tenant = "acme";
  serve::TrafficDriver driver(cluster.kernel(), cluster.api(), cluster.cri(),
                              cluster.endpoints(), traffic);
  driver.start();
  cluster.run();
  ASSERT_EQ(driver.served(), 20u);
  const auto* requests = cluster.obs().metrics.find_counter(
      "wasmctr_tenant_requests_total", "tenant=\"acme\"");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value(), 20.0);
}

}  // namespace
}  // namespace wasmctr::k8s
