// CrashLoopBackOff reset-boundary tests: pins the stock kubelet constants
// (10 s base, ×2 growth, 300 s cap, reset after 600 s of healthy running)
// and the exact boundary semantics — healthy for 599 s keeps the backoff
// curve, healthy for 600 s resets it.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace wasmctr::k8s {
namespace {

TEST(CrashLoopBoundaryTest, StockConstantsArePinned) {
  Cluster cluster;
  const KubeletConfig& config = cluster.kubelet().config();
  EXPECT_EQ(config.backoff_base, sim_s(10.0));
  EXPECT_EQ(config.backoff_cap, sim_s(300.0));
  EXPECT_EQ(config.backoff_reset_after, sim_s(600.0));

  // delay(k) = min(10 · 2^(k−1), 300) s.
  EXPECT_EQ(cluster.kubelet().backoff_delay(0), SimDuration{0});
  EXPECT_EQ(cluster.kubelet().backoff_delay(1), sim_s(10.0));
  EXPECT_EQ(cluster.kubelet().backoff_delay(2), sim_s(20.0));
  EXPECT_EQ(cluster.kubelet().backoff_delay(3), sim_s(40.0));
  EXPECT_EQ(cluster.kubelet().backoff_delay(4), sim_s(80.0));
  EXPECT_EQ(cluster.kubelet().backoff_delay(5), sim_s(160.0));
  EXPECT_EQ(cluster.kubelet().backoff_delay(6), sim_s(300.0)) << "the cap";
  EXPECT_EQ(cluster.kubelet().backoff_delay(7), sim_s(300.0))
      << "the curve must saturate, not keep doubling";
}

TEST(CrashLoopBoundaryTest, HealthyFor599sKeepsCurve600sResetsIt) {
  ClusterOptions opts;
  opts.restart_policy = RestartPolicy::kOnFailure;
  Cluster cluster(opts);
  PodSpec spec;
  spec.name = "leaky";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = 32ull << 20;  // enough to start, not to spike
  spec.restart_policy = RestartPolicy::kOnFailure;
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  cluster.run();

  // Kernel OOM kill (exit 137) through the CRI exit watch — the same
  // post-Running failure path a real memory spike takes.
  const auto oom_now = [&cluster] {
    const Pod* pod = cluster.api().pod("leaky");
    ASSERT_NE(pod, nullptr);
    ASSERT_EQ(pod->status.phase, PodPhase::kRunning);
    EXPECT_EQ(cluster.cri()
                  .grow_container_memory(pod->status.container_id,
                                         Bytes(64ull << 20))
                  .code(),
              ErrorCode::kResourceExhausted);
  };

  // Failure #1 right after the first Running: attempt 1, 10 s delay.
  oom_now();
  cluster.run();

  // Healthy for exactly 599 s — one second short of the reset window:
  // the counter must keep the curve and double to 20 s.
  const SimTime healthy_599 = cluster.api().pod("leaky")->status.running_at;
  cluster.run_until(healthy_599 + sim_s(599.0));
  oom_now();
  cluster.run();

  // Healthy for exactly 600 s — the boundary is inclusive (stock kubelet:
  // "ran successfully for at least backoff_reset_after"): the counter
  // resets and the next failure starts the curve over at 10 s.
  const SimTime healthy_600 = cluster.api().pod("leaky")->status.running_at;
  cluster.run_until(healthy_600 + sim_s(600.0));
  oom_now();
  cluster.run();

  const auto& trace = cluster.kubelet().backoff_trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].attempt, 1u);
  EXPECT_EQ(trace[0].delay, sim_s(10.0));
  EXPECT_EQ(trace[1].attempt, 2u) << "599 s of healthy running must NOT "
                                     "reset the consecutive-failure count";
  EXPECT_EQ(trace[1].delay, sim_s(20.0));
  EXPECT_EQ(trace[2].attempt, 1u)
      << "600 s of healthy running must reset the count";
  EXPECT_EQ(trace[2].delay, sim_s(10.0));

  EXPECT_EQ(cluster.api().pod("leaky")->status.phase, PodPhase::kRunning);
  EXPECT_EQ(cluster.api().pod("leaky")->status.restart_count, 3u);
}

}  // namespace
}  // namespace wasmctr::k8s
