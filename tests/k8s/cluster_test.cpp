// Cluster-level tests: scheduling, kubelet limits, metrics/free probes,
// hybrid deployments — the end-to-end behaviours the benches rely on.
#include "k8s/cluster.hpp"

#include <gtest/gtest.h>

namespace wasmctr::k8s {
namespace {

TEST(ClusterTest, DeployTenWamrPodsAllRun) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 10).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 10u);
  EXPECT_EQ(cluster.failed_count(), 0u);
  EXPECT_GT(to_seconds(cluster.startup_makespan()), 0.0);
}

TEST(ClusterTest, WorkloadStdoutReachable) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "solo").is_ok());
  cluster.run();
  auto out = cluster.pod_stdout("solo-crun-wamr-0");
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(*out, "hello from wasm microservice\n");
}

TEST(ClusterTest, PythonPodsRunTheScript) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunPython, 3).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 3u);
  auto out = cluster.pod_stdout("pod-crun-python-0");
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(*out, "hello from python microservice\n");
}

TEST(ClusterTest, EveryConfigDeploysCleanly) {
  for (DeployConfig c : kAllConfigs) {
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(c, 5).is_ok()) << deploy_config_name(c);
    cluster.run();
    EXPECT_EQ(cluster.running_count(), 5u) << deploy_config_name(c);
    EXPECT_EQ(cluster.failed_count(), 0u) << deploy_config_name(c);
    EXPECT_GT(cluster.metrics_avg_per_container().value, 0u);
    EXPECT_GT(cluster.free_avg_per_container().value, 0u);
  }
}

TEST(ClusterTest, FreeReportsMoreThanMetrics) {
  // Paper §IV-B: `free` sees shims/kubelet/kernel state the metrics
  // server does not; reported values are strictly higher.
  for (DeployConfig c : {DeployConfig::kCrunWamr, DeployConfig::kCrunPython,
                         DeployConfig::kShimWasmtime}) {
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(c, 10).is_ok());
    cluster.run();
    EXPECT_GT(cluster.free_avg_per_container(),
              cluster.metrics_avg_per_container())
        << deploy_config_name(c);
  }
}

TEST(ClusterTest, MemoryPerContainerDensityInvariant) {
  // Paper §IV-B: "memory overhead per container does not vary
  // significantly between deployment sizes" — under 10 % drift.
  double at10 = 0;
  double at400 = 0;
  for (const uint32_t n : {10u, 400u}) {
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, n).is_ok());
    cluster.run();
    ASSERT_EQ(cluster.running_count(), n);
    (n == 10 ? at10 : at400) = cluster.metrics_avg_per_container().mib();
  }
  EXPECT_LT(std::abs(at10 - at400) / at400, 0.10);
}

TEST(ClusterTest, StockKubeletCapsAt110Pods) {
  // §III-C: the paper had to raise the kubelet limit to support 500 pods.
  ClusterOptions stock;
  stock.max_pods = 110;
  Cluster cluster(stock);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 200).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 110u);
  EXPECT_EQ(cluster.failed_count(), 90u);
}

TEST(ClusterTest, ExtendedConfigRuns400Pods) {
  Cluster cluster;  // default options use the paper's 500-pod config
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 400).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 400u);
  EXPECT_EQ(cluster.failed_count(), 0u);
}

TEST(ClusterTest, HybridWasmAndPythonPodsCoexist) {
  // §III-C: "pods can seamlessly run traditional and Wasm-based
  // containers, enabling hybrid deployments".
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 5, "wasm").is_ok());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kRuncPython, 5, "py").is_ok());
  ASSERT_TRUE(cluster.deploy(DeployConfig::kShimWasmtime, 5, "shim").is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), 15u);
  EXPECT_EQ(cluster.failed_count(), 0u);
}

TEST(ClusterTest, UnknownRuntimeClassFailsPod) {
  Cluster cluster;
  PodSpec spec;
  spec.name = "bad";
  spec.image = "microservice:wasm";
  spec.runtime_class = "does-not-exist";
  EXPECT_EQ(cluster.deploy_pod(std::move(spec)).code(),
            ErrorCode::kNotFound);
}

TEST(ClusterTest, DuplicatePodNameRejected) {
  Cluster cluster;
  PodSpec spec;
  spec.name = "dup";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  ASSERT_TRUE(cluster.deploy_pod(spec).is_ok());
  EXPECT_EQ(cluster.deploy_pod(spec).code(), ErrorCode::kAlreadyExists);
}

TEST(ClusterTest, MetricsServerSeesOnlyRunningPods) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 4).is_ok());
  EXPECT_EQ(cluster.metrics().top_pods().size(), 0u) << "nothing running yet";
  cluster.run();
  EXPECT_EQ(cluster.metrics().top_pods().size(), 4u);
}

TEST(ClusterTest, PodStatusTimestampsOrdered) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 3).is_ok());
  cluster.run();
  for (const Pod* pod : cluster.api().pods()) {
    ASSERT_EQ(pod->status.phase, PodPhase::kRunning);
    EXPECT_GT(pod->status.running_at, pod->status.created_at);
    EXPECT_FALSE(pod->status.sandbox_id.empty());
    EXPECT_FALSE(pod->status.container_id.empty());
  }
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  auto measure = [] {
    Cluster cluster;
    EXPECT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 20).is_ok());
    cluster.run();
    return std::pair(cluster.startup_makespan(),
                     cluster.metrics_avg_per_container());
  };
  const auto a = measure();
  const auto b = measure();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ClusterTest, MemoryLimitedPodFails) {
  Cluster cluster;
  PodSpec spec;
  spec.name = "tiny";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.memory_limit = 1 << 20;  // 1 MiB
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.failed_count(), 1u);
  const Pod* pod = cluster.api().pod("tiny");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->status.phase, PodPhase::kFailed);
}

}  // namespace
}  // namespace wasmctr::k8s
