// Integration tests asserting the paper's headline claims (C1–C8 in
// DESIGN.md) hold in the simulation at every density the paper evaluates.
// These are the same checks the benches print; here they gate CI.
#include <gtest/gtest.h>

#include <map>

#include "k8s/cluster.hpp"

namespace wasmctr::k8s {
namespace {

struct Measurement {
  double metrics_mib;
  double free_mib;
  double startup_s;
};

Measurement measure(DeployConfig config, uint32_t density) {
  Cluster cluster;
  EXPECT_TRUE(cluster.deploy(config, density).is_ok());
  cluster.run();
  EXPECT_EQ(cluster.running_count(), density) << deploy_config_name(config);
  return {cluster.metrics_avg_per_container().mib(),
          cluster.free_avg_per_container().mib(),
          to_seconds(cluster.startup_makespan())};
}

double reduction(double ours, double other) { return 1.0 - ours / other; }

class PaperClaims : public ::testing::TestWithParam<uint32_t> {
 protected:
  static const std::map<DeployConfig, Measurement>& all(uint32_t density) {
    static std::map<uint32_t, std::map<DeployConfig, Measurement>> cache;
    auto& slot = cache[density];
    if (slot.empty()) {
      for (DeployConfig c : kAllConfigs) slot.emplace(c, measure(c, density));
    }
    return slot;
  }
};

TEST_P(PaperClaims, C1_MemoryVsCrunEngines) {
  const auto& m = all(GetParam());
  const double ours_metrics = m.at(DeployConfig::kCrunWamr).metrics_mib;
  const double ours_free = m.at(DeployConfig::kCrunWamr).free_mib;
  for (DeployConfig c : {DeployConfig::kCrunWasmtime, DeployConfig::kCrunWasmer,
                         DeployConfig::kCrunWasmEdge}) {
    EXPECT_GE(reduction(ours_metrics, m.at(c).metrics_mib), 0.5034)
        << deploy_config_name(c) << " (paper Fig 3: >=50.34% at any density)";
    EXPECT_GE(reduction(ours_free, m.at(c).free_mib), 0.40)
        << deploy_config_name(c) << " (paper Fig 4: >=40.0%)";
  }
}

TEST_P(PaperClaims, C2_MemoryVsRunwasiShims) {
  const auto& m = all(GetParam());
  const double ours = m.at(DeployConfig::kCrunWamr).free_mib;
  EXPECT_GE(reduction(ours, m.at(DeployConfig::kShimWasmtime).free_mib),
            0.1087)
      << "paper Fig 5: >=10.87% vs containerd-shim-wasmtime";
  EXPECT_NEAR(reduction(ours, m.at(DeployConfig::kShimWasmer).free_mib),
              0.7753, 0.02)
      << "paper Fig 5: 77.53% vs containerd-shim-wasmer";
  // Every shim is worse than ours.
  for (DeployConfig c : {DeployConfig::kShimWasmtime, DeployConfig::kShimWasmer,
                         DeployConfig::kShimWasmEdge}) {
    EXPECT_LT(ours, m.at(c).free_mib) << deploy_config_name(c);
  }
}

TEST_P(PaperClaims, C3_MemoryVsPython) {
  const auto& m = all(GetParam());
  const auto& ours = m.at(DeployConfig::kCrunWamr);
  const auto& crun_py = m.at(DeployConfig::kCrunPython);
  const auto& runc_py = m.at(DeployConfig::kRuncPython);
  EXPECT_GE(reduction(ours.metrics_mib, crun_py.metrics_mib), 0.1798)
      << "paper Fig 6: >=17.98% vs crun+Python (metrics server)";
  EXPECT_GE(reduction(ours.metrics_mib, runc_py.metrics_mib), 0.1815)
      << "paper Fig 6: >=18.15% vs runC+Python (metrics server)";
  EXPECT_GE(reduction(ours.free_mib, crun_py.free_mib), 0.1638)
      << "paper Fig 7: >=16.38% vs crun+Python (free)";
  EXPECT_GE(reduction(ours.free_mib, runc_py.free_mib), 0.1787)
      << "paper Fig 7: >=17.87% vs runC+Python (free)";

  // Ours is the ONLY Wasm config under Python on the metrics server.
  for (DeployConfig c :
       {DeployConfig::kCrunWasmtime, DeployConfig::kCrunWasmer,
        DeployConfig::kCrunWasmEdge, DeployConfig::kShimWasmtime,
        DeployConfig::kShimWasmer, DeployConfig::kShimWasmEdge}) {
    EXPECT_GT(m.at(c).metrics_mib, crun_py.metrics_mib)
        << deploy_config_name(c) << " must not beat Python on metrics";
  }
  // On free, shim-wasmtime additionally slips under Python by >=4.66%.
  EXPECT_GE(reduction(m.at(DeployConfig::kShimWasmtime).free_mib,
                      crun_py.free_mib),
            0.0466)
      << "paper Fig 7: shim-wasmtime beats Python by >=4.66% on free";
  EXPECT_GT(m.at(DeployConfig::kShimWasmEdge).free_mib, crun_py.free_mib)
      << "shim-wasmedge must not beat Python on free";
}

TEST_P(PaperClaims, C7_FreeExceedsMetricsByUpTo42Percent) {
  const auto& m = all(GetParam());
  for (const auto& [config, meas] : m) {
    const double ratio = meas.free_mib / meas.metrics_mib;
    EXPECT_GT(ratio, 1.0) << deploy_config_name(config);
    EXPECT_LE(ratio, 1.42) << deploy_config_name(config)
                           << " (paper: up to 42% more)";
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, PaperClaims,
                         ::testing::Values(10u, 100u, 400u),
                         [](const auto& info) {
                           return "density" + std::to_string(info.param);
                         });

TEST(PaperClaimsStartup, C5_TenContainers) {
  std::map<DeployConfig, double> t;
  for (DeployConfig c : kAllConfigs) t[c] = measure(c, 10).startup_s;
  const double ours = t[DeployConfig::kCrunWamr];
  EXPECT_NEAR(ours, 3.24, 0.25) << "paper Fig 8: ours ~3.24s";
  // runwasi shims are the fastest at low density (up to 11.45% ahead).
  EXPECT_LT(t[DeployConfig::kShimWasmtime], ours);
  EXPECT_LT(t[DeployConfig::kShimWasmEdge], ours);
  EXPECT_GE(reduction(t[DeployConfig::kShimWasmEdge], ours), 0.05);
  EXPECT_LE(reduction(t[DeployConfig::kShimWasmEdge], ours), 0.1145 + 0.02);
  // Ours beats every other crun engine by at least 2.66%.
  for (DeployConfig c : {DeployConfig::kCrunWasmtime, DeployConfig::kCrunWasmer,
                         DeployConfig::kCrunWasmEdge}) {
    EXPECT_GE(reduction(ours, t[c]), 0.0266) << deploy_config_name(c);
  }
  // Ours beats Python by 3-18% (abstract).
  for (DeployConfig c : {DeployConfig::kCrunPython, DeployConfig::kRuncPython}) {
    const double r = reduction(ours, t[c]);
    EXPECT_GE(r, 0.03) << deploy_config_name(c);
    EXPECT_LE(r, 0.18) << deploy_config_name(c);
  }
}

TEST(PaperClaimsStartup, C6_FourHundredContainers) {
  std::map<DeployConfig, double> t;
  for (DeployConfig c : kAllConfigs) t[c] = measure(c, 400).startup_s;
  const double ours = t[DeployConfig::kCrunWamr];
  // The ranking flips: ours now beats both fast shims...
  EXPECT_NEAR(reduction(ours, t[DeployConfig::kShimWasmEdge]), 0.1882, 0.03)
      << "paper Fig 9: 18.82% faster than shim-wasmedge";
  EXPECT_NEAR(reduction(ours, t[DeployConfig::kShimWasmtime]), 0.2838, 0.03)
      << "paper Fig 9: 28.38% faster than shim-wasmtime";
  // ...but trails crun-wasmtime by ~6.93%.
  const double vs_cwt =
      ours / t[DeployConfig::kCrunWasmtime] - 1.0;
  EXPECT_NEAR(vs_cwt, 0.0693, 0.02)
      << "paper Fig 9: ours 6.93% slower than crun-wasmtime";
  // Still ahead of Python at scale.
  EXPECT_LT(ours, t[DeployConfig::kCrunPython]);
  EXPECT_LT(ours, t[DeployConfig::kRuncPython]);
}

}  // namespace
}  // namespace wasmctr::k8s
