#include "engines/engine.hpp"

#include <gtest/gtest.h>

#include "engines/compile_cache.hpp"
#include "wasm/builder.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::engines {
namespace {

TEST(EngineProfileTest, ProfilesResolve) {
  for (EngineKind k : {EngineKind::kWamr, EngineKind::kWasmtime,
                       EngineKind::kWasmer, EngineKind::kWasmEdge}) {
    EXPECT_EQ(crun_engine_profile(k).kind, k);
  }
  for (EngineKind k :
       {EngineKind::kWasmtime, EngineKind::kWasmer, EngineKind::kWasmEdge}) {
    EXPECT_EQ(shim_engine_profile(k).kind, k);
  }
}

TEST(EngineProfileTest, WamrIsTheLightestCrunEngine) {
  const EngineProfile& wamr = crun_engine_profile(EngineKind::kWamr);
  for (EngineKind k : {EngineKind::kWasmtime, EngineKind::kWasmer,
                       EngineKind::kWasmEdge}) {
    const EngineProfile& other = crun_engine_profile(k);
    EXPECT_LT(wamr.private_fixed, other.private_fixed)
        << engine_name(k);
    EXPECT_LT(wamr.shared_lib, other.shared_lib) << engine_name(k);
    EXPECT_LE(wamr.instance_multiplier, other.instance_multiplier)
        << "interpreter must not hold JIT code";
  }
}

TEST(EngineTest, LibraryNames) {
  EXPECT_EQ(make_crun_engine(EngineKind::kWamr).library_name(), "libwamr.so");
  EXPECT_EQ(make_shim_engine(EngineKind::kWasmtime).library_name(),
            "containerd-shim-wasmtime");
}

TEST(EngineTest, RunsMicroserviceEndToEnd) {
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  wasi::VirtualFs fs;
  wasi::WasiOptions opts;
  opts.args = {"app.wasm"};
  auto report = wamr.run_module(wasm::build_minimal_microservice(),
                                std::move(opts), fs);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->exit_code, 0u);
  EXPECT_EQ(report->stdout_data, "hello from wasm microservice\n");
  EXPECT_GT(report->instructions, 0u);
  EXPECT_GT(report->measured_instance.value, 128u * 1024)
      << "two Wasm pages of linear memory must be counted";
}

TEST(EngineTest, ModeledInstanceAppliesMultiplier) {
  wasi::VirtualFs fs;
  wasi::WasiOptions opts;
  opts.args = {"app.wasm"};
  const auto bytes = wasm::build_minimal_microservice();
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  const Engine wasmtime = make_crun_engine(EngineKind::kWasmtime);
  auto interp = wamr.run_module(bytes, opts, fs);
  auto jit = wasmtime.run_module(bytes, opts, fs);
  ASSERT_TRUE(interp.is_ok());
  ASSERT_TRUE(jit.is_ok());
  EXPECT_EQ(interp->tier, Tier::kInterpreter);
  EXPECT_EQ(jit->tier, Tier::kBaseline);
  EXPECT_EQ(interp->instructions, jit->instructions)
      << "tiers are observationally identical (differential suite)";
  EXPECT_EQ(jit->modeled_instance.value, jit->measured_instance.value * 3)
      << "wasmtime profile holds 3x (compiled code)";
  EXPECT_EQ(interp->modeled_instance, interp->measured_instance);
  // Baseline execution reports the real compile of this module.
  EXPECT_GT(jit->compile.wasm_ops, 0u);
  EXPECT_GT(jit->compile.bytecode_bytes, 0u);
  EXPECT_GE(jit->compile.code_pages, 1u);
  EXPECT_GE(jit->compile.meta_pages, 1u);
  EXPECT_EQ(interp->compile.wasm_ops, 0u) << "no compile at interp tier";
}

TEST(EngineTest, TierOverrideFlipsBothDirections) {
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  const Engine wasmtime = make_crun_engine(EngineKind::kWasmtime);
  EXPECT_EQ(wamr.tier(), Tier::kInterpreter);
  EXPECT_EQ(wasmtime.tier(), Tier::kBaseline);
  {
    ScopedTierOverride force_baseline(Tier::kBaseline);
    EXPECT_EQ(wamr.tier(), Tier::kBaseline);
    EXPECT_EQ(wasmtime.tier(), Tier::kBaseline);
    {
      ScopedTierOverride force_interp(Tier::kInterpreter);
      EXPECT_EQ(wamr.tier(), Tier::kInterpreter);
      EXPECT_EQ(wasmtime.tier(), Tier::kInterpreter);
    }
    EXPECT_EQ(wamr.tier(), Tier::kBaseline) << "nested override restores";
  }
  EXPECT_EQ(wamr.tier(), Tier::kInterpreter);
  EXPECT_EQ(wasmtime.tier(), Tier::kBaseline);
  EXPECT_FALSE(tier_override().has_value());
}

TEST(EngineTest, MeasureCompileIsMemoizedAndMeasured) {
  const Engine wasmtime = make_crun_engine(EngineKind::kWasmtime);
  const auto bytes = wasm::build_minimal_microservice();
  auto a = wasmtime.measure_compile(bytes);
  auto b = wasmtime.measure_compile(bytes);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->content_hash, b->content_hash);
  EXPECT_EQ(a->wasm_ops, b->wasm_ops);
  EXPECT_EQ(a->wasm_bytes, bytes.size());
  auto ca = wasmtime.compiled_module(bytes);
  auto cb = wasmtime.compiled_module(bytes);
  ASSERT_TRUE(ca.is_ok() && cb.is_ok());
  EXPECT_EQ(ca->get(), cb->get()) << "second compile hits the artifact cache";
  EXPECT_GT(wasmtime.compile_cpu_s(*a), 0.0);
}

TEST(EngineTest, RejectsMalformedModule) {
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  wasi::VirtualFs fs;
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  auto report = wamr.run_module(garbage, {}, fs);
  EXPECT_EQ(report.status().code(), ErrorCode::kMalformed);
}

TEST(EngineTest, NonZeroExitCodeSurfaces) {
  // A module whose _start exits 7.
  wasm::ModuleBuilder b;
  const uint32_t proc_exit = b.import_function(
      "wasi_snapshot_preview1", "proc_exit", {wasm::ValType::kI32}, {});
  b.add_memory(1, 1);
  wasm::FnBuilder& f = b.add_function("_start", {}, {});
  f.i32_const(7).call(proc_exit).end();
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  wasi::VirtualFs fs;
  auto report = wamr.run_module(b.build(), {}, fs);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->exit_code, 7u);
}

TEST(EngineTest, GenuineTrapIsAnError) {
  wasm::ModuleBuilder b;
  b.add_memory(1, 1);
  wasm::FnBuilder& f = b.add_function("_start", {}, {});
  f.unreachable().end();
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  wasi::VirtualFs fs;
  auto report = wamr.run_module(b.build(), {}, fs);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kTrap);
}

TEST(StartupCostTest, CacheSplitsCompileFromLoad) {
  const Engine wasmtime = make_crun_engine(EngineKind::kWasmtime);
  const auto bytes = wasm::build_minimal_microservice();
  auto meas = wasmtime.measure_compile(bytes);
  ASSERT_TRUE(meas.is_ok());
  const StartupCost cold = wasmtime.startup_cost(bytes.size(), false, &*meas);
  const StartupCost warm = wasmtime.startup_cost(bytes.size(), true, &*meas);
  EXPECT_GT(cold.shared_compile_cpu_s, 1.0);
  EXPECT_EQ(cold.cache_load_cpu_s, 0.0);
  EXPECT_EQ(cold.compile_cpu_s, 0.0) << "shared-cache engines compile once";
  EXPECT_EQ(warm.shared_compile_cpu_s, 0.0);
  EXPECT_GT(warm.cache_load_cpu_s, 0.0);
  EXPECT_LT(warm.cache_load_cpu_s, cold.shared_compile_cpu_s);
}

TEST(StartupCostTest, InterpreterTierChargesNoCompile) {
  const Engine wasmtime = make_crun_engine(EngineKind::kWasmtime);
  const auto bytes = wasm::build_minimal_microservice();
  auto meas = wasmtime.measure_compile(bytes);
  ASSERT_TRUE(meas.is_ok());
  ScopedTierOverride interp(Tier::kInterpreter);
  const StartupCost cost = wasmtime.startup_cost(bytes.size(), false, &*meas);
  EXPECT_EQ(cost.shared_compile_cpu_s, 0.0);
  EXPECT_EQ(cost.compile_cpu_s, 0.0);
  EXPECT_EQ(cost.cache_load_cpu_s, 0.0);
  EXPECT_GT(cost.init_cpu_s, 0.0);
}

TEST(StartupCostTest, ShimPaysPerPodCompile) {
  // No shared artifact cache: the compile lands in the per-container
  // field regardless of what the "node cache" claims.
  const Engine shim = make_shim_engine(EngineKind::kWasmtime);
  const auto bytes = wasm::build_minimal_microservice();
  auto meas = shim.measure_compile(bytes);
  ASSERT_TRUE(meas.is_ok());
  const StartupCost cost = shim.startup_cost(bytes.size(), true, &*meas);
  EXPECT_GT(cost.compile_cpu_s, 0.0);
  EXPECT_EQ(cost.shared_compile_cpu_s, 0.0);
  EXPECT_EQ(cost.cache_load_cpu_s, 0.0);
}

TEST(StartupCostTest, WamrHasNoCompileStage) {
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  const StartupCost cost = wamr.startup_cost(3000, false);
  EXPECT_EQ(cost.shared_compile_cpu_s, 0.0);
  EXPECT_EQ(cost.cache_load_cpu_s, 0.0);
  EXPECT_GT(cost.init_cpu_s, 0.0);
}

TEST(StartupCostTest, LoadScalesWithModuleSize) {
  const Engine wamr = make_crun_engine(EngineKind::kWamr);
  EXPECT_GT(wamr.startup_cost(1 << 20, false).load_cpu_s,
            wamr.startup_cost(1 << 10, false).load_cpu_s);
}

TEST(CompileCacheTest, MissThenHit) {
  CompileCache cache;
  int ready_calls = 0;
  EXPECT_EQ(cache.lookup("m", [&] { ++ready_calls; }),
            CompileCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup("m", [&] { ++ready_calls; }),
            CompileCache::Outcome::kWait);
  EXPECT_EQ(cache.lookup("m", [&] { ++ready_calls; }),
            CompileCache::Outcome::kWait);
  EXPECT_FALSE(cache.is_ready("m"));
  cache.publish("m");
  EXPECT_EQ(ready_calls, 2) << "both waiters released";
  EXPECT_TRUE(cache.is_ready("m"));
  EXPECT_EQ(cache.lookup("m", [] {}), CompileCache::Outcome::kHit);
}

TEST(CompileCacheTest, PublishFiresEveryWaiterExactlyOnce) {
  CompileCache cache;
  int a = 0;
  int b = 0;
  int c = 0;
  ASSERT_EQ(cache.lookup("m", [&] { ++a; }), CompileCache::Outcome::kMiss);
  ASSERT_EQ(cache.lookup("m", [&] { ++a; }), CompileCache::Outcome::kWait);
  ASSERT_EQ(cache.lookup("m", [&] { ++b; }), CompileCache::Outcome::kWait);
  ASSERT_EQ(cache.lookup("m", [&] { ++c; }), CompileCache::Outcome::kWait);
  EXPECT_EQ(a + b + c, 0) << "nothing fires before publish";
  cache.publish("m");
  EXPECT_EQ(a, 1) << "the kMiss caller's callback must NOT fire";
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 1);
  // A second publish on the same key must not re-fire drained waiters.
  cache.publish("m");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 1);
}

TEST(CompileCacheTest, PublishOnUnknownKeyIsNoOp) {
  CompileCache cache;
  cache.publish("never-looked-up");
  EXPECT_FALSE(cache.is_ready("never-looked-up"))
      << "publish must not conjure an entry nobody compiled";
  // The key is still virgin: the next lookup becomes the compiler.
  EXPECT_EQ(cache.lookup("never-looked-up", [] {}),
            CompileCache::Outcome::kMiss);
}

TEST(CompileCacheTest, HitAfterPublishPaysOnlyArtifactLoad) {
  CompileCache cache;
  ASSERT_EQ(cache.lookup("m", [] {}), CompileCache::Outcome::kMiss);
  cache.publish("m");
  // Every later starter sees kHit — synchronously, its queued callback
  // never enters the waiter list — so the caller charges only
  // cache_load_cpu_s, never a second compile.
  int stray = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.lookup("m", [&] { ++stray; }),
              CompileCache::Outcome::kHit);
  }
  cache.publish("m");
  EXPECT_EQ(stray, 0) << "kHit callers are never enqueued as waiters";
}

TEST(CompileCacheTest, KeysAreIndependent) {
  CompileCache cache;
  EXPECT_EQ(cache.lookup("a", [] {}), CompileCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup("b", [] {}), CompileCache::Outcome::kMiss);
  cache.publish("a");
  EXPECT_EQ(cache.lookup("a", [] {}), CompileCache::Outcome::kHit);
  EXPECT_EQ(cache.lookup("b", [] {}), CompileCache::Outcome::kWait);
}

}  // namespace
}  // namespace wasmctr::engines
