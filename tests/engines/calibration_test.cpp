// Invariants over the calibration constants: these encode the *architectural*
// relationships the paper's results rest on. If a future re-calibration
// breaks one of these, the benches will drift in ways the shape checks may
// not localize — this test names the broken relationship directly.
#include <gtest/gtest.h>

#include <vector>

#include "engines/calibration.hpp"
#include "engines/engine.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::engines {
namespace {

TEST(CalibrationTest, InterpreterHasNoCompileJitsDo) {
  const EngineProfile& wamr = crun_engine_profile(EngineKind::kWamr);
  EXPECT_EQ(wamr.tier, Tier::kInterpreter)
      << "WAMR interprets; a compile stage would break the Fig 8 shape";
  EXPECT_FALSE(wamr.shared_compile_cache)
      << "nothing to cache when no artifact is produced by default";
  for (EngineKind k : {EngineKind::kWasmtime, EngineKind::kWasmer,
                       EngineKind::kWasmEdge}) {
    const EngineProfile& p = crun_engine_profile(k);
    EXPECT_EQ(p.tier, Tier::kBaseline) << engine_name(k);
    EXPECT_TRUE(p.shared_compile_cache) << engine_name(k);
    EXPECT_GT(p.compile_cpu_s_per_kop, 0.0) << engine_name(k);
  }
}

TEST(CalibrationTest, MeasuredCompileReproducesCalibratedTotals) {
  // The per-kop rates were fitted so the standard microservice module
  // (the image every figure bench deploys) costs what the original
  // calibrated constants said: 1.20 / 1.80 / 1.50 s for the crun JIT
  // engines. A drift here silently reshapes Fig 8/9.
  const std::vector<uint8_t> wasm = wasm::build_minimal_microservice();
  const struct {
    EngineKind kind;
    double expect_s;
  } kFits[] = {{EngineKind::kWasmtime, 1.20},
               {EngineKind::kWasmer, 1.80},
               {EngineKind::kWasmEdge, 1.50}};
  for (const auto& fit : kFits) {
    const Engine engine = make_crun_engine(fit.kind);
    auto m = engine.measure_compile(wasm);
    ASSERT_TRUE(m.is_ok()) << engine_name(fit.kind);
    const double compile_s = engine.compile_cpu_s(*m);
    EXPECT_NEAR(compile_s, fit.expect_s, fit.expect_s * 0.02)
        << engine_name(fit.kind);
    EXPECT_GT(compile_s, engine.profile().cache_load_cpu_s * 10)
        << engine_name(fit.kind) << ": compile must dwarf a cache hit";
  }
}

TEST(CalibrationTest, WamrSteadyStateSlowerThanCachedJits) {
  // The Fig 9 mechanism: once the cache is warm, every JIT engine's
  // per-container cost (init + cache load) undercuts WAMR's full
  // interpreter init. Otherwise the 400-pod ranking cannot flip.
  const EngineProfile& wamr = crun_engine_profile(EngineKind::kWamr);
  for (EngineKind k : {EngineKind::kWasmtime, EngineKind::kWasmer,
                       EngineKind::kWasmEdge}) {
    const EngineProfile& p = crun_engine_profile(k);
    EXPECT_LT(p.init_cpu_s + p.cache_load_cpu_s, wamr.init_cpu_s)
        << engine_name(k);
  }
}

TEST(CalibrationTest, WasmtimeIsTheFastestCachedEngine) {
  // Paper Fig 9: crun-Wasmtime specifically is "the most performant".
  const EngineProfile& wt = crun_engine_profile(EngineKind::kWasmtime);
  for (EngineKind k : {EngineKind::kWasmer, EngineKind::kWasmEdge}) {
    const EngineProfile& p = crun_engine_profile(k);
    EXPECT_LT(wt.init_cpu_s + wt.cache_load_cpu_s,
              p.init_cpu_s + p.cache_load_cpu_s)
        << engine_name(k);
  }
}

TEST(CalibrationTest, ShimWasmerIsTheMemoryWorstCase) {
  // Paper Fig 5/10: containerd-shim-wasmer is the most memory-hungry
  // configuration (ours is 77.53 % below it).
  const Bytes wasmer = shim_engine_profile(EngineKind::kWasmer).private_fixed;
  for (EngineKind k : {EngineKind::kWasmtime, EngineKind::kWasmEdge}) {
    EXPECT_GT(wasmer, shim_engine_profile(k).private_fixed) << engine_name(k);
  }
  for (EngineKind k : {EngineKind::kWamr, EngineKind::kWasmtime,
                       EngineKind::kWasmer, EngineKind::kWasmEdge}) {
    EXPECT_GT(wasmer, crun_engine_profile(k).private_fixed) << engine_name(k);
  }
}

TEST(CalibrationTest, ShimWasmtimeLeanerThanItsCrunEmbedding) {
  // Fig 5 vs Fig 4: the wasmtime shim undercuts crun-wasmtime (it skips
  // the OCI runtime and shares the compiled-in runtime text), which is
  // what makes it the second-best config overall.
  EXPECT_LT(shim_engine_profile(EngineKind::kWasmtime).private_fixed,
            crun_engine_profile(EngineKind::kWasmtime).private_fixed);
}

TEST(CalibrationTest, RunwasiSerializationOrdersTheFig9Shims) {
  // shim-wasmtime must queue worse than shim-wasmedge at the daemon for
  // the paper's 28.38 % vs 18.82 % split.
  EXPECT_GT(kInfra.runwasi_serial_per_conn_wasmtime_s,
            kInfra.runwasi_serial_per_conn_wasmedge_s);
  EXPECT_GE(kInfra.runwasi_serial_per_conn_wasmer_s,
            kInfra.runwasi_serial_per_conn_wasmtime_s);
  // runc-v2 shims must be effectively free at the daemon or crun paths
  // would also collapse at 400 pods.
  EXPECT_LT(kInfra.daemon_serial_runc_shim_s,
            kInfra.runwasi_serial_base_wasmedge_s);
}

TEST(CalibrationTest, RuncCostsMoreThanCrun) {
  // Paper §III-B picks crun for its "lightweight nature and performance
  // efficiency"; runC must be strictly heavier on both axes.
  EXPECT_GT(kInfra.runc_exec_cpu_s, kInfra.crun_exec_cpu_s);
  EXPECT_GT(kInfra.runc_runtime_extra.value, 0u);
}

TEST(CalibrationTest, PythonHeavierThanWamrLighterThanJits) {
  // Fig 6/7's ordering: WAMR < Python < every other Wasm engine.
  const PythonProfile& py = kPythonProfile;
  EXPECT_GT(py.private_fixed,
            crun_engine_profile(EngineKind::kWamr).private_fixed);
  for (EngineKind k : {EngineKind::kWasmtime, EngineKind::kWasmer,
                       EngineKind::kWasmEdge}) {
    EXPECT_LT(py.private_fixed, crun_engine_profile(k).private_fixed)
        << engine_name(k);
  }
}

TEST(CalibrationTest, MetricsFreeGapComponentsArePositive) {
  // Fig 3-vs-4 gap = runc-v2 shim + kubelet + kernel objects; all three
  // must exist or `free` would not exceed the metrics server.
  EXPECT_GT(kInfra.runc_shim_private.value, 0u);
  EXPECT_GT(kInfra.kubelet_per_pod.value, 0u);
  EXPECT_GT(kInfra.kernel_per_pod.value, 0u);
}

}  // namespace
}  // namespace wasmctr::engines
