// Cross-layer instrumentation tests: real clusters produce pod timelines
// whose phases tile the startup interval, carry the expected per-class
// phase vocabulary, and export byte-identically across same-seed runs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "k8s/cluster.hpp"
#include "serve/traffic.hpp"

namespace wasmctr::obs {
namespace {

using k8s::Cluster;
using k8s::DeployConfig;

std::set<std::string> phase_names(const Tracer& tracer) {
  std::set<std::string> names;
  for (const PhaseStat& p : tracer.pod_phase_stats()) names.insert(p.phase);
  return names;
}

TEST(StartupPhasesTest, TimelinesTileStartupForEveryConfig) {
  for (const DeployConfig config : k8s::kAllConfigs) {
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(config, 3).is_ok());
    cluster.run();
    ASSERT_EQ(cluster.running_count(), 3u) << k8s::deploy_config_name(config);

    const Tracer& tracer = cluster.obs().tracer;
    EXPECT_EQ(tracer.completed_timelines(), 3u)
        << k8s::deploy_config_name(config);

    std::map<uint64_t, SimDuration> child_sum;
    for (const Span& s : tracer.spans()) {
      if (s.parent != 0 && s.closed && !s.instant) {
        child_sum[s.parent] += s.duration();
      }
    }
    SimTime last_end{0};
    for (const Span* root : tracer.pod_roots()) {
      // Integer virtual-time arithmetic: tiling is exact, not approximate.
      EXPECT_EQ(child_sum[root->id], root->duration())
          << k8s::deploy_config_name(config) << " root " << root->id;
      last_end = std::max(last_end, root->end);
      EXPECT_GT(root->duration().count(), 0);
    }
    // The latest timeline closes exactly at the Fig 8/9 makespan.
    EXPECT_EQ(last_end - tracer.pod_roots().front()->start,
              cluster.startup_makespan())
        << k8s::deploy_config_name(config);
  }
}

TEST(StartupPhasesTest, PhaseVocabularyPerRuntimeClass) {
  const std::set<std::string> common = {"sched.bind", "kubelet.sync",
                                        "sandbox.cni", "cri.create",
                                        "shim.spawn"};

  {  // crun-wamr: runc-style exec, embedded engine, no interpreter.
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2).is_ok());
    cluster.run();
    const auto names = phase_names(cluster.obs().tracer);
    for (const std::string& p : common) EXPECT_TRUE(names.count(p)) << p;
    EXPECT_TRUE(names.count("runtime.exec"));
    EXPECT_TRUE(names.count("engine.load"));
    EXPECT_TRUE(names.count("wasi.start"));
    EXPECT_FALSE(names.count("interp.boot"));
  }
  {  // runwasi: the shim *is* the runtime — no separate runtime.exec.
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(DeployConfig::kShimWasmtime, 2).is_ok());
    cluster.run();
    const auto names = phase_names(cluster.obs().tracer);
    for (const std::string& p : common) EXPECT_TRUE(names.count(p)) << p;
    EXPECT_FALSE(names.count("runtime.exec"));
    EXPECT_TRUE(names.count("engine.load"));
    EXPECT_TRUE(names.count("wasi.start"));
  }
  {  // python: interpreter boot instead of engine load / WASI entry.
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(DeployConfig::kRuncPython, 2).is_ok());
    cluster.run();
    const auto names = phase_names(cluster.obs().tracer);
    EXPECT_TRUE(names.count("runtime.exec"));
    EXPECT_TRUE(names.count("interp.boot"));
    EXPECT_FALSE(names.count("engine.load"));
    EXPECT_FALSE(names.count("wasi.start"));
  }
}

TEST(StartupPhasesTest, RootSpanCarriesPodIdentity) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 1, "solo").is_ok());
  cluster.run();
  const auto roots = cluster.obs().tracer.pod_roots();
  ASSERT_EQ(roots.size(), 1u);
  std::map<std::string, std::string> attrs(roots[0]->attrs.begin(),
                                           roots[0]->attrs.end());
  EXPECT_EQ(attrs["pod"], "solo-crun-wamr-0");
  EXPECT_EQ(attrs["handler"], "crun-wamr");
  EXPECT_EQ(attrs["image"], "microservice:wasm");
  EXPECT_EQ(attrs["outcome"], "Running");
  EXPECT_EQ(attrs["attempt"], "1");
}

TEST(StartupPhasesTest, StartupMetricsMatchClusterCounts) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(DeployConfig::kShimWasmer, 5).is_ok());
  cluster.run();
  const Registry& reg = cluster.obs().metrics;
  const Counter* bound = reg.find_counter("wasmctr_scheduler_bound_total");
  const Counter* started = reg.find_counter("wasmctr_pods_started_total");
  const Counter* sandboxes = reg.find_counter("wasmctr_sandboxes_created_total");
  ASSERT_NE(bound, nullptr);
  ASSERT_NE(started, nullptr);
  ASSERT_NE(sandboxes, nullptr);
  EXPECT_DOUBLE_EQ(bound->value(), 5.0);
  EXPECT_DOUBLE_EQ(started->value(), 5.0);
  EXPECT_DOUBLE_EQ(sandboxes->value(), 5.0);
  const Histogram* startup = reg.find_histogram("wasmctr_pod_startup_seconds");
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->count(), 5u);
  EXPECT_GT(startup->quantile(0.50), 0.0);
}

TEST(StartupPhasesTest, ExportsAreByteIdenticalAcrossSameSeedRuns) {
  auto run_once = [](std::string* chrome, std::string* prom,
                     std::string* text) {
    Cluster cluster;
    ASSERT_TRUE(cluster.deploy(DeployConfig::kShimWasmtime, 5).is_ok());
    cluster.run();
    ASSERT_EQ(cluster.running_count(), 5u);
    *chrome = cluster.obs().tracer.chrome_trace_json();
    *prom = cluster.obs().metrics.prometheus_text();
    *text = cluster.obs().tracer.text();
  };
  std::string chrome_a, prom_a, text_a;
  std::string chrome_b, prom_b, text_b;
  run_once(&chrome_a, &prom_a, &text_a);
  run_once(&chrome_b, &prom_b, &text_b);
  EXPECT_EQ(chrome_a, chrome_b);
  EXPECT_EQ(prom_a, prom_b);
  EXPECT_EQ(text_a, text_b);
  EXPECT_FALSE(chrome_a.empty());
  EXPECT_FALSE(prom_a.empty());
}

TEST(StartupPhasesTest, ServingPathEmitsRequestSpansAndMetrics) {
  Cluster cluster;
  k8s::Service svc;
  svc.name = "svc";
  svc.selector = {{"app", "srv"}};
  ASSERT_TRUE(cluster.api().create_service(svc).is_ok());
  serve::DeploymentSpec spec;
  spec.name = "srv";
  spec.replicas = 2;
  spec.pod_template.image = "request-service:wasm";
  spec.pod_template.runtime_class = "crun-wamr";
  ASSERT_TRUE(cluster.deployments().create(std::move(spec)).is_ok());
  cluster.run();

  serve::TrafficOptions opts;
  opts.service = "svc";
  opts.total_requests = 8;
  opts.rate_rps = 40.0;
  serve::TrafficDriver driver(cluster.node().kernel(), cluster.api(),
                              cluster.cri(), cluster.endpoints(), opts);
  driver.start();
  cluster.run();
  ASSERT_EQ(driver.served(), 8u);

  std::size_t requests = 0;
  std::size_t attempts = 0;
  std::size_t queue = 0;
  std::size_t exec = 0;
  for (const Span& s : cluster.obs().tracer.spans()) {
    if (s.name == "request") ++requests;
    if (s.name == "request.attempt") ++attempts;
    if (s.name == "serve.queue") ++queue;
    if (s.name == "serve.exec") ++exec;
    if (s.name == "request" || s.name == "request.attempt" ||
        s.name == "serve.queue" || s.name == "serve.exec") {
      EXPECT_TRUE(s.closed) << s.name << " " << s.id;
    }
  }
  EXPECT_EQ(requests, 8u);
  EXPECT_EQ(attempts, 8u) << "no retries on a healthy service";
  EXPECT_EQ(queue, 8u);
  EXPECT_EQ(exec, 8u);

  const Registry& reg = cluster.obs().metrics;
  const Counter* total =
      reg.find_counter("wasmctr_requests_total", "service=\"svc\"");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), 8.0);
  const Histogram* lat =
      reg.find_histogram("wasmctr_request_latency_ms", "service=\"svc\"");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 8u);
  // The driver's stats and the registry histogram share nearest-rank math.
  EXPECT_DOUBLE_EQ(lat->quantile(0.50), driver.latency().p50_ms);
  EXPECT_DOUBLE_EQ(lat->quantile(0.99), driver.latency().p99_ms);
}

}  // namespace
}  // namespace wasmctr::obs
