// Metrics registry tests. The nearest-rank cases pin the exact behaviour
// of the serving plane's historical percentile_ms so moving the math into
// obs::Histogram can never change reported latency quantiles.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace wasmctr::obs {
namespace {

TEST(NearestRankTest, PinsHistoricalPercentileBehaviour) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 1.00), 100.0);

  const std::vector<double> three = {10, 20, 30};
  EXPECT_DOUBLE_EQ(nearest_rank(three, 0.50), 20.0);
  EXPECT_DOUBLE_EQ(nearest_rank(three, 0.95), 30.0);
  EXPECT_DOUBLE_EQ(nearest_rank(three, 0.99), 30.0);

  const std::vector<double> one = {42};
  EXPECT_DOUBLE_EQ(nearest_rank(one, 0.50), 42.0);
  EXPECT_DOUBLE_EQ(nearest_rank(one, 0.99), 42.0);

  EXPECT_DOUBLE_EQ(nearest_rank({}, 0.50), 0.0) << "empty input yields 0";
  EXPECT_DOUBLE_EQ(nearest_rank(three, 0.0), 10.0) << "q=0 is the minimum";
}

TEST(CounterGaugeTest, Basics) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);

  Gauge g;
  g.set(7);
  g.add(-2);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(HistogramTest, BucketCountsAndStats) {
  Histogram h({1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 10.0}) h.observe(v);

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.2);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // Bounds are inclusive upper limits; the final slot is +Inf.
  const std::vector<uint64_t> expected = {2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 10.0);
}

TEST(HistogramTest, QuantilesTrackLateObservations) {
  Histogram h(default_latency_buckets_ms());
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
  h.observe(50.0);  // after a quantile call: lazy sort must invalidate
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 50.0);
}

TEST(RegistryTest, SameNameAndLabelsIsTheSameMetric) {
  Registry reg;
  Counter& a = reg.counter("requests_total", "service=\"svc\"");
  Counter& b = reg.counter("requests_total", "service=\"svc\"");
  Counter& other = reg.counter("requests_total", "service=\"other\"");
  a.inc();
  b.inc();
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  EXPECT_DOUBLE_EQ(other.value(), 0.0);

  EXPECT_NE(reg.find_counter("requests_total", "service=\"svc\""), nullptr);
  EXPECT_EQ(reg.find_counter("requests_total"), nullptr);
  EXPECT_EQ(reg.find_histogram("requests_total"), nullptr);
}

TEST(RegistryTest, HistogramKeepsFirstBounds) {
  Registry reg;
  Histogram& a = reg.histogram("lat_ms", {1.0, 2.0});
  Histogram& b = reg.histogram("lat_ms", {99.0});  // bounds ignored: exists
  EXPECT_EQ(&a, &b);
  ASSERT_EQ(a.bounds().size(), 2u);
}

std::string build_exposition() {
  Registry reg;
  reg.counter("wasmctr_pods_started_total").inc(12);
  reg.gauge("wasmctr_queue_depth", "service=\"svc\"").set(3);
  Histogram& h =
      reg.histogram("wasmctr_request_latency_ms", {1.0, 5.0}, "service=\"svc\"");
  h.observe(0.5);
  h.observe(4.0);
  h.observe(100.0);
  return reg.prometheus_text();
}

TEST(RegistryTest, PrometheusTextIsDeterministicAndWellFormed) {
  const std::string text = build_exposition();
  EXPECT_EQ(text, build_exposition());

  // Integral values render as integers, histogram buckets are cumulative
  // with the label list preceding `le`, and every family is present.
  EXPECT_NE(text.find("wasmctr_pods_started_total 12\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wasmctr_queue_depth{service=\"svc\"} 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "wasmctr_request_latency_ms_bucket{service=\"svc\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "wasmctr_request_latency_ms_bucket{service=\"svc\",le=\"5\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "wasmctr_request_latency_ms_bucket{service=\"svc\",le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("wasmctr_request_latency_ms_sum{service=\"svc\"} 104.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("wasmctr_request_latency_ms_count{service=\"svc\"} 3\n"),
            std::string::npos);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(label("service", "svc\"x\\y"), "service=\"svc\\\"x\\\\y\"");
}

TEST(ExpositionTest, GoldenOutputWithEdgeCaseValues) {
  Registry reg;
  reg.gauge("g_negzero").set(-0.0);
  reg.gauge("g_nan").set(std::nan(""));
  reg.gauge("g_posinf").set(std::numeric_limits<double>::infinity());
  reg.gauge("g_neginf").set(-std::numeric_limits<double>::infinity());
  reg.gauge("g_frac").set(1.5);
  reg.counter("c_escaped", label("service", "a\"b\\c")).inc(2);
  // Golden: fixed ordering, canonical NaN/Inf spellings, -0 normalised,
  // escaped label values.
  EXPECT_EQ(reg.prometheus_text(),
            "c_escaped{service=\"a\\\"b\\\\c\"} 2\n"
            "g_frac 1.5\n"
            "g_nan NaN\n"
            "g_neginf -Inf\n"
            "g_negzero 0\n"
            "g_posinf +Inf\n");
}

TEST(HistogramTest, SampleRetentionOffKeepsAggregatesAndBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("lat_ms", {1.0, 5.0, 10.0});
  for (const double v : {0.5, 2.0, 7.0, 20.0}) h.observe(v);
  const std::string before = reg.prometheus_text();

  reg.set_sample_retention(false);
  // Aggregates and buckets survive the sample drop; the exposition is
  // unchanged (it never depended on raw samples).
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 29.5);
  EXPECT_DOUBLE_EQ(h.max(), 20.0);
  EXPECT_EQ(reg.prometheus_text(), before);

  // Quantiles degrade to bucket upper bounds: p50 of {0.5,2,7,20} is 2
  // exactly, bucket bound 5 in lean mode; the +Inf bucket reports max().
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 20.0);

  // New observations keep counting without retaining samples.
  h.observe(0.5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);

  // Histograms created after the registry-wide switch inherit it.
  EXPECT_FALSE(reg.histogram("other", {1.0}).sample_retention());
}

TEST(RegistryTest, ClearEmptiesTheRegistry) {
  Registry reg;
  reg.counter("a").inc();
  reg.clear();
  EXPECT_EQ(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.prometheus_text(), "");
}

}  // namespace
}  // namespace wasmctr::obs
