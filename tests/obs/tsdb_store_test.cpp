// Ring-buffer TSDB regression suite: delta-encoding exactness, ring
// wraparound, footprint accounting, histogram decomposition.
#include "obs/tsdb/store.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wasmctr::obs::tsdb {
namespace {

TEST(SeriesTest, DeltaEncodingIsLosslessForSimValues) {
  Series s(SeriesKind::kGauge, 16);
  // Integral byte counts and to_millis latencies (ns / 1e6) — the values
  // the simulation actually produces — must round-trip exactly.
  const double values[] = {0.0, 4096.0, 268435456.0, to_millis(sim_us(1234)),
                           to_millis(SimDuration(987654321)), 0.25};
  SimTime t = sim_s(5.0);
  for (const double v : values) {
    s.append(t, v);
    t += sim_s(5.0);
  }
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 6u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].value, values[i]) << "sample " << i;
    EXPECT_EQ(samples[i].t, sim_s(5.0) * static_cast<int64_t>(i + 1));
  }
}

TEST(SeriesTest, RingWraparoundFoldsOldestIntoAnchor) {
  Series s(SeriesKind::kCounter, 4);
  for (int i = 1; i <= 10; ++i) {
    s.append(sim_s(static_cast<double>(i)), 100.0 * i);
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.appended(), 10u);
  EXPECT_EQ(s.dropped(), 6u);
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 4u);
  // The surviving window is the newest 4 samples, decoded exactly even
  // though their deltas now chain off the folded anchor.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].t, sim_s(static_cast<double>(7 + i)));
    EXPECT_DOUBLE_EQ(samples[i].value, 100.0 * (7 + i));
  }
}

TEST(SeriesTest, SameTimestampOverwritesTail) {
  Series s(SeriesKind::kGauge, 8);
  s.append(sim_s(1.0), 10);
  s.append(sim_s(2.0), 20);
  s.append(sim_s(2.0), 25);  // re-append within one scrape instant
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[1].value, 25.0);
  ASSERT_TRUE(s.latest().has_value());
  EXPECT_DOUBLE_EQ(s.latest()->value, 25.0);
}

TEST(SeriesTest, VisitWindowIsHalfOpenLookback) {
  Series s(SeriesKind::kGauge, 8);
  s.append(sim_s(5.0), 1);
  s.append(sim_s(10.0), 2);
  s.append(sim_s(15.0), 3);
  std::vector<double> got;
  // (5, 15]: the sample sitting exactly on the window start is excluded,
  // the one on the end is included.
  s.visit(sim_s(5.0), sim_s(15.0),
          [&got](SimTime, double v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<double>{2, 3}));
}

TEST(SeriesTest, LatestAtOrBefore) {
  Series s(SeriesKind::kGauge, 8);
  s.append(sim_s(5.0), 1);
  s.append(sim_s(10.0), 2);
  EXPECT_FALSE(s.latest_at_or_before(sim_s(4.0)).has_value());
  ASSERT_TRUE(s.latest_at_or_before(sim_s(5.0)).has_value());
  EXPECT_DOUBLE_EQ(s.latest_at_or_before(sim_s(5.0))->value, 1.0);
  EXPECT_DOUBLE_EQ(s.latest_at_or_before(sim_s(99.0))->value, 2.0);
}

TEST(TimeSeriesStoreTest, FootprintAccountsRingsAndGrowsOnlyOnNewSeries) {
  TimeSeriesStore store(TimeSeriesStore::Options{.capacity_per_series = 64});
  EXPECT_EQ(store.footprint().value, 0u);
  store.append("m", "a=\"1\"", SeriesKind::kGauge, sim_s(1.0), 1);
  const Bytes after_one = store.footprint();
  // 64 samples × 12 B of ring plus key/bookkeeping overhead.
  EXPECT_GE(after_one.value, 64u * 12u);
  // Appending to the same series never grows the footprint: rings are
  // preallocated, eviction folds in place.
  for (int i = 2; i < 200; ++i) {
    store.append("m", "a=\"1\"", SeriesKind::kGauge,
                 sim_s(static_cast<double>(i)), i);
  }
  EXPECT_EQ(store.footprint().value, after_one.value);
  store.append("m", "a=\"2\"", SeriesKind::kGauge, sim_s(1.0), 1);
  EXPECT_GT(store.footprint().value, after_one.value);
  EXPECT_EQ(store.series_count(), 2u);
}

TEST(TimeSeriesStoreTest, HistogramDecomposesIntoBucketSeries) {
  TimeSeriesStore store;
  const std::vector<double> bounds = {1.0, 5.0};
  // Cumulative counts (le=1, le=5, +Inf), sum, count — as scraped.
  store.append_histogram("lat_ms", "service=\"svc\"", sim_s(5.0), bounds,
                         {1, 2, 3}, 104.5, 3);
  store.append_histogram("lat_ms", "service=\"svc\"", sim_s(10.0), bounds,
                         {2, 4, 6}, 209.0, 6);

  const auto buckets = store.buckets_of("lat_ms", "service=\"svc\"");
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].bound, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].bound, 5.0);
  EXPECT_TRUE(std::isinf(buckets[2].bound));
  EXPECT_EQ(buckets[2].series->size(), 2u);
  ASSERT_TRUE(buckets[2].series->latest().has_value());
  EXPECT_DOUBLE_EQ(buckets[2].series->latest()->value, 6.0);

  // Bucket series are findable under the exact exposition label rendering.
  EXPECT_NE(store.find("lat_ms_bucket", "service=\"svc\",le=\"1\""), nullptr);
  EXPECT_NE(store.find("lat_ms_bucket", "service=\"svc\",le=\"+Inf\""),
            nullptr);
  ASSERT_NE(store.find("lat_ms_sum", "service=\"svc\""), nullptr);
  EXPECT_DOUBLE_EQ(
      store.find("lat_ms_sum", "service=\"svc\"")->latest()->value, 209.0);
  EXPECT_NE(store.find("lat_ms_count", "service=\"svc\""), nullptr);
  EXPECT_EQ(store.buckets_of("lat_ms", "other=\"x\"").size(), 0u);
}

TEST(TimeSeriesStoreTest, ForEachIteratesDeterministically) {
  TimeSeriesStore store;
  store.append("b", "", SeriesKind::kGauge, sim_s(1.0), 1);
  store.append("a", "x=\"2\"", SeriesKind::kGauge, sim_s(1.0), 2);
  store.append("a", "x=\"1\"", SeriesKind::kGauge, sim_s(1.0), 3);
  std::vector<std::string> keys;
  store.for_each([&](const std::string& name, const std::string& labels,
                     const Series&) { keys.push_back(name + "|" + labels); });
  EXPECT_EQ(keys,
            (std::vector<std::string>{"a|x=\"1\"", "a|x=\"2\"", "b|"}));
}

}  // namespace
}  // namespace wasmctr::obs::tsdb
