// Alert/SLO evaluator suite: `for`-window semantics, fire/resolve trace
// instants, counters, burn rate, and no-data behaviour.
#include "obs/tsdb/alerts.hpp"

#include <gtest/gtest.h>

#include "obs/observability.hpp"
#include "obs/tsdb/scraper.hpp"
#include "sim/kernel.hpp"

namespace wasmctr::obs::tsdb {
namespace {

struct Pipeline {
  sim::Kernel kernel;
  Observability obs{kernel};
  TimeSeriesStore store;
  AlertEvaluator alerts{store, obs.tracer, obs.metrics};
  Scraper scraper{kernel, obs.metrics, store,
                  Scraper::Options{sim_s(5.0), true}};

  Pipeline() { scraper.set_alert_evaluator(&alerts); }

  void run_windows(int n) {
    const SimTime until = kernel.now() + sim_s(5.0) * n;
    kernel.run_until(until);
  }

  std::size_t instants(const std::string& name) const {
    std::size_t n = 0;
    for (const Span& s : obs.tracer.spans()) {
      if (s.instant && s.name == name) ++n;
    }
    return n;
  }
};

AlertRule gauge_rule() {
  AlertRule rule;
  rule.name = "queue-deep";
  rule.kind = AlertRule::Kind::kGaugeAbove;
  rule.metric = "queue_depth";
  rule.window = sim_s(5.0);
  rule.threshold = 10;
  rule.for_windows = 3;
  return rule;
}

TEST(AlertEvaluatorTest, FiresAfterForWindowsConsecutiveBreaches) {
  Pipeline p;
  p.alerts.add_rule(gauge_rule());
  p.obs.metrics.gauge("queue_depth").set(50);
  p.scraper.start();

  // Scrapes at t=0 and t=5: two breaches — not firing yet.
  p.run_windows(1);
  EXPECT_FALSE(p.alerts.active("queue-deep"));
  EXPECT_EQ(p.alerts.fired_total(), 0u);

  // Third consecutive breach at t=10 fires.
  p.run_windows(1);
  EXPECT_TRUE(p.alerts.active("queue-deep"));
  EXPECT_EQ(p.alerts.fired_total(), 1u);
  EXPECT_EQ(p.instants("alert.fire"), 1u);
  EXPECT_DOUBLE_EQ(p.obs.metrics.gauge("wasmctr_alert_active",
                                       "alert=\"queue-deep\"")
                       .value(),
                   1.0);

  // Staying breached does not re-fire.
  p.run_windows(3);
  EXPECT_EQ(p.alerts.fired_total(), 1u);

  // First clear window resolves.
  p.obs.metrics.gauge("queue_depth").set(0);
  p.run_windows(1);
  EXPECT_FALSE(p.alerts.active("queue-deep"));
  EXPECT_EQ(p.alerts.resolved_total(), 1u);
  EXPECT_EQ(p.instants("alert.resolve"), 1u);
  EXPECT_DOUBLE_EQ(p.obs.metrics.gauge("wasmctr_alert_active",
                                       "alert=\"queue-deep\"")
                       .value(),
                   0.0);
  EXPECT_DOUBLE_EQ(p.obs.metrics.counter("wasmctr_alerts_fired_total",
                                         "alert=\"queue-deep\"")
                       .value(),
                   1.0);
  p.scraper.stop();
}

TEST(AlertEvaluatorTest, BreachStreakResetsOnClearWindow) {
  Pipeline p;
  p.alerts.add_rule(gauge_rule());
  Gauge& g = p.obs.metrics.gauge("queue_depth");
  g.set(50);
  p.scraper.start();
  p.run_windows(1);  // two breaches (t=0, t=5)
  g.set(0);
  p.run_windows(1);  // clear at t=10: streak resets
  g.set(50);
  p.run_windows(1);  // breach #1 again at t=15: streak restarted
  EXPECT_FALSE(p.alerts.active("queue-deep"));
  p.run_windows(2);  // t=20 and t=25 complete three consecutive
  EXPECT_TRUE(p.alerts.active("queue-deep"));
  p.scraper.stop();
}

TEST(AlertEvaluatorTest, QuantileRuleFiresOnLatencyRegression) {
  Pipeline p;
  AlertRule rule;
  rule.name = "p99-high";
  rule.kind = AlertRule::Kind::kQuantileAbove;
  rule.metric = "lat_ms";
  rule.q = 0.99;
  rule.window = sim_s(10.0);
  rule.threshold = 250;
  rule.for_windows = 1;
  p.alerts.add_rule(rule);
  Histogram& h =
      p.obs.metrics.histogram("lat_ms", default_latency_buckets_ms());
  p.scraper.start();
  p.run_windows(1);  // baseline scrapes at t=0 and t=5
  // Observations landing *between* scrapes become window increases; the
  // pre-first-scrape history is unattributable baseline by design.
  for (int i = 0; i < 100; ++i) h.observe(400.0);
  p.run_windows(1);  // t=10 scrape: 100 window-local obs at 400 ms → p99 500
  EXPECT_TRUE(p.alerts.active("p99-high"));
  // Fast traffic clears the window once the slow burst ages out.
  for (int i = 0; i < 1000; ++i) h.observe(1.0);
  p.run_windows(3);
  EXPECT_FALSE(p.alerts.active("p99-high"));
  EXPECT_EQ(p.alerts.resolved_total(), 1u);
  p.scraper.stop();
}

TEST(AlertEvaluatorTest, BurnRateRule) {
  Pipeline p;
  AlertRule rule;
  rule.name = "slo-burn";
  rule.kind = AlertRule::Kind::kBurnRateAbove;
  rule.metric = "served_total";
  rule.failed_metric = "failed_total";
  rule.objective = 0.99;
  rule.window = sim_s(10.0);
  rule.threshold = 1.0;  // burning faster than the error budget
  rule.for_windows = 1;
  p.alerts.add_rule(rule);
  Counter& served = p.obs.metrics.counter("served_total");
  Counter& failed = p.obs.metrics.counter("failed_total");
  p.scraper.start();
  p.run_windows(1);
  EXPECT_FALSE(p.alerts.active("slo-burn"));
  served.inc(1000);
  failed.inc(50);  // 5% failures vs a 1% budget → burn rate 5
  p.run_windows(1);
  EXPECT_TRUE(p.alerts.active("slo-burn"));
  served.inc(1000);  // clean window → resolves
  p.run_windows(2);
  EXPECT_FALSE(p.alerts.active("slo-burn"));
  p.scraper.stop();
}

TEST(AlertEvaluatorTest, MissingDataNeverBreaches) {
  Pipeline p;
  AlertRule rule = gauge_rule();
  rule.metric = "does_not_exist";
  rule.for_windows = 1;
  p.alerts.add_rule(rule);
  p.scraper.start();
  p.run_windows(4);
  EXPECT_FALSE(p.alerts.active(rule.name));
  EXPECT_EQ(p.alerts.fired_total(), 0u);
  p.scraper.stop();
}

TEST(AlertEvaluatorTest, TraceStringIsDeterministic) {
  const auto run = [] {
    Pipeline p;
    AlertRule rule = gauge_rule();
    rule.for_windows = 2;
    p.alerts.add_rule(rule);
    Gauge& g = p.obs.metrics.gauge("queue_depth");
    g.set(42);
    p.scraper.start();
    p.run_windows(2);
    g.set(1);
    p.run_windows(1);
    p.scraper.stop();
    return std::string(p.alerts.trace_string());
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("fire queue-deep value=42 threshold=10"),
            std::string::npos)
      << a;
  EXPECT_NE(a.find("resolve queue-deep"), std::string::npos) << a;
}

}  // namespace
}  // namespace wasmctr::obs::tsdb
