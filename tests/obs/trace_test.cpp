// Tracer unit tests: span lifecycle, nesting, instants, pod timelines
// (tiling + attempts), and byte-deterministic exports.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "support/json.hpp"

namespace wasmctr::obs {
namespace {

TEST(TraceTest, SpanLifecycleAndNesting) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const SpanId root = tracer.begin_span("parent", "k8s");
  ASSERT_TRUE(static_cast<bool>(root));
  SpanId child;
  kernel.schedule_after(sim_ms(int64_t{5}), [&] {
    child = tracer.begin_span("child", "oci", root);
    tracer.set_attr(child, "pod", "p0");
  });
  kernel.schedule_after(sim_ms(int64_t{9}), [&] { tracer.end_span(child); });
  kernel.schedule_after(sim_ms(int64_t{12}), [&] { tracer.end_span(root); });
  kernel.run();

  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span* r = tracer.span(root);
  const Span* c = tracer.span(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(c->parent, root.value);
  EXPECT_TRUE(r->closed);
  EXPECT_TRUE(c->closed);
  EXPECT_DOUBLE_EQ(to_seconds(r->duration()), 0.012);
  EXPECT_DOUBLE_EQ(to_seconds(c->duration()), 0.004);
  ASSERT_EQ(c->attrs.size(), 1u);
  EXPECT_EQ(c->attrs[0].first, "pod");
  EXPECT_EQ(c->attrs[0].second, "p0");
}

TEST(TraceTest, EndSpanIsIdempotentAndUnknownIdsAreNoOps) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const SpanId id = tracer.begin_span("s", "k8s");
  tracer.end_span(id);
  const SimTime closed_at = tracer.span(id)->end;
  kernel.schedule_after(sim_s(1.0), [&] {
    tracer.end_span(id);                // already closed: keep first end
    tracer.end_span(SpanId{9999});      // unknown: no-op
    tracer.set_attr(SpanId{9999}, "k", "v");
  });
  kernel.run();
  EXPECT_EQ(tracer.span(id)->end, closed_at);
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TraceTest, InstantMarkersHaveZeroDuration) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const SpanId root = tracer.begin_span("request", "serve");
  const SpanId ev = tracer.instant("request.retry", "serve", root);
  const Span* s = tracer.span(ev);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->instant);
  EXPECT_TRUE(s->closed);
  EXPECT_EQ(s->parent, root.value);
  EXPECT_EQ(s->duration().count(), 0);
}

TEST(TraceTest, PodTimelinePhasesTileExactly) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.pod_phase("p0", "sched.bind", "k8s");
  kernel.schedule_after(sim_ms(int64_t{2}),
                        [&] { tracer.pod_phase("p0", "kubelet.sync", "k8s"); });
  kernel.schedule_after(sim_ms(int64_t{7}), [&] {
    tracer.pod_phase("p0", "engine.load", "engines");
  });
  kernel.schedule_after(sim_ms(int64_t{10}), [&] {
    const SimDuration total = tracer.pod_end("p0", "Running");
    EXPECT_DOUBLE_EQ(to_seconds(total), 0.010);
  });
  kernel.run();

  EXPECT_EQ(tracer.completed_timelines(), 1u);
  const auto roots = tracer.pod_roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name, kPodRootSpanName);

  // Phase children tile the root: each starts where the previous ended.
  double child_sum = 0;
  SimTime cursor = roots[0]->start;
  for (const Span& s : tracer.spans()) {
    if (s.parent != roots[0]->id) continue;
    EXPECT_EQ(s.start, cursor) << s.name;
    cursor = s.end;
    child_sum += to_seconds(s.duration());
  }
  EXPECT_EQ(cursor, roots[0]->end);
  EXPECT_DOUBLE_EQ(child_sum, to_seconds(roots[0]->duration()));

  const auto stats = tracer.pod_phase_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].phase, "sched.bind");  // first-appearance order
  EXPECT_EQ(stats[1].phase, "kubelet.sync");
  EXPECT_EQ(stats[2].phase, "engine.load");
  EXPECT_DOUBLE_EQ(stats[1].total_s, 0.005);
}

TEST(TraceTest, PodEndThenPhaseStartsFreshAttempt) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.pod_phase("p0", "kubelet.sync", "k8s");
  kernel.schedule_after(sim_ms(int64_t{3}), [&] {
    tracer.pod_end("p0", "CrashLoopBackOff");
  });
  kernel.schedule_after(sim_s(10.0), [&] {
    tracer.pod_phase("p0", "kubelet.sync", "k8s");  // retry after backoff
  });
  kernel.schedule_after(sim_s(11.0), [&] { tracer.pod_end("p0", "Running"); });
  kernel.run();

  const auto roots = tracer.pod_roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(tracer.completed_timelines(), 1u) << "only the Running attempt";
  // Backoff wait is idle time between attempts, not inside either root.
  EXPECT_DOUBLE_EQ(to_seconds(roots[0]->duration()), 0.003);
  EXPECT_DOUBLE_EQ(to_seconds(roots[1]->duration()), 1.0);
  auto attr = [](const Span* s, const std::string& key) -> std::string {
    for (const auto& [k, v] : s->attrs) {
      if (k == key) return v;
    }
    return "";
  };
  EXPECT_EQ(attr(roots[0], "attempt"), "1");
  EXPECT_EQ(attr(roots[1], "attempt"), "2");
  EXPECT_EQ(attr(roots[0], "outcome"), "CrashLoopBackOff");
  EXPECT_EQ(attr(roots[1], "outcome"), "Running");
}

TEST(TraceTest, PodAttrStampsOpenRoot) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.pod_attr("ghost", "k", "v");  // no timeline: no-op, no crash
  tracer.pod_phase("p0", "sched.bind", "k8s");
  tracer.pod_attr("p0", "handler", "crun-wamr");
  tracer.pod_end("p0", "Running");
  const auto roots = tracer.pod_roots();
  ASSERT_EQ(roots.size(), 1u);
  bool found = false;
  for (const auto& [k, v] : roots[0]->attrs) {
    if (k == "handler") {
      EXPECT_EQ(v, "crun-wamr");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Builds the same small trace against a fresh kernel.
std::string build_trace(bool chrome) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.pod_phase("p0", "sched.bind", "k8s");
  kernel.schedule_after(sim_ms(int64_t{4}), [&] {
    tracer.pod_phase("p0", "engine.load", "engines");
    tracer.instant("crashloop.backoff", "k8s");
  });
  kernel.schedule_after(sim_ms(int64_t{6}),
                        [&] { tracer.pod_end("p0", "Running"); });
  kernel.run();
  return chrome ? tracer.chrome_trace_json() : tracer.text();
}

TEST(TraceTest, ChromeExportIsValidJsonAndDeterministic) {
  const std::string a = build_trace(/*chrome=*/true);
  const std::string b = build_trace(/*chrome=*/true);
  EXPECT_EQ(a, b) << "same build must be byte-identical";

  auto doc = json::parse(a);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Root + 2 phases as "X" events, 1 instant as "i".
  EXPECT_EQ(events->as_array().size(), 4u);
  std::size_t complete = 0;
  std::size_t instants = 0;
  for (const json::Value& ev : events->as_array()) {
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "X") ++complete;
    if (ph->as_string() == "i") ++instants;
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(instants, 1u);
}

TEST(TraceTest, TextExportIsDeterministic) {
  const std::string a = build_trace(/*chrome=*/false);
  const std::string b = build_trace(/*chrome=*/false);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("pod.startup"), std::string::npos);
  EXPECT_NE(a.find("engine.load"), std::string::npos);
}

TEST(TraceTest, ClearResetsEverything) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.pod_phase("p0", "sched.bind", "k8s");
  tracer.pod_end("p0", "Running");
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.completed_timelines(), 0u);
  EXPECT_TRUE(tracer.pod_roots().empty());
}

}  // namespace
}  // namespace wasmctr::obs
