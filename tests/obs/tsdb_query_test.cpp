// Windowed-query regression suite: counter resets, empty windows, the
// bucket-bound quantile error contract, and scraper cadence.
#include "obs/tsdb/query.hpp"

#include <gtest/gtest.h>

#include "obs/tsdb/scraper.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"

namespace wasmctr::obs::tsdb {
namespace {

Series make_counter(const std::vector<std::pair<double, double>>& points) {
  Series s(SeriesKind::kCounter, 64);
  for (const auto& [t_s, v] : points) s.append(sim_s(t_s), v);
  return s;
}

TEST(IncreaseTest, SimpleMonotoneIncrease) {
  const Series s = make_counter({{5, 10}, {10, 30}, {15, 45}});
  // Baseline is the sample at the window start (excluded from the window,
  // used as the reference): increase over (5, 15] = 45 − 10.
  EXPECT_DOUBLE_EQ(increase(s, sim_s(15.0), sim_s(10.0)).value_or(-1), 35.0);
  EXPECT_DOUBLE_EQ(rate(s, sim_s(15.0), sim_s(10.0)).value_or(-1), 3.5);
}

TEST(IncreaseTest, CounterResetCountsPostResetValueAsIncrease) {
  // Counter climbs to 100, target restarts (drops to 5), climbs to 20:
  // true increase across the window is (100−80) + 5 + (20−5) = 40.
  const Series s = make_counter({{5, 80}, {10, 100}, {15, 5}, {20, 20}});
  EXPECT_DOUBLE_EQ(increase(s, sim_s(20.0), sim_s(15.0)).value_or(-1), 40.0);
}

TEST(IncreaseTest, WindowStartingBeforeSeriesSeedsFromFirstSample) {
  // No baseline before the window: the first in-window sample seeds the
  // reference (its own value is unattributable).
  const Series s = make_counter({{10, 50}, {15, 70}});
  EXPECT_DOUBLE_EQ(increase(s, sim_s(20.0), sim_s(20.0)).value_or(-1), 20.0);
}

TEST(IncreaseTest, EmptyWindowIsNullopt) {
  const Series s = make_counter({{5, 10}});
  EXPECT_FALSE(increase(s, sim_s(100.0), sim_s(10.0)).has_value());
  EXPECT_FALSE(rate(s, sim_s(100.0), sim_s(10.0)).has_value());
  const Series empty(SeriesKind::kCounter, 8);
  EXPECT_FALSE(increase(empty, sim_s(10.0), sim_s(10.0)).has_value());
}

TEST(WindowAggregateTest, MaxAndAvg) {
  Series s(SeriesKind::kGauge, 16);
  s.append(sim_s(5.0), 10);
  s.append(sim_s(10.0), 40);
  s.append(sim_s(15.0), 20);
  EXPECT_DOUBLE_EQ(max_over_window(s, sim_s(15.0), sim_s(10.0)).value_or(-1),
                   40.0);
  EXPECT_DOUBLE_EQ(avg_over_window(s, sim_s(15.0), sim_s(10.0)).value_or(-1),
                   30.0);
  EXPECT_FALSE(max_over_window(s, sim_s(4.0), sim_s(2.0)).has_value());
}

TEST(BurnRateTest, RatioOverErrorBudget) {
  const Series total = make_counter({{5, 0}, {10, 1000}});
  const Series failed = make_counter({{5, 0}, {10, 30}});
  // 3% failures against a 99% objective burns 3× the 1% budget.
  EXPECT_NEAR(
      burn_rate(total, failed, 0.99, sim_s(10.0), sim_s(10.0)).value_or(-1),
      3.0, 1e-9);
  // No requests in the window → no signal.
  EXPECT_FALSE(
      burn_rate(total, failed, 0.99, sim_s(100.0), sim_s(5.0)).has_value());
}

// Scrape a registry histogram via the real Scraper and compare the
// windowed quantile (bucket-bound resolution) against the registry's raw
// nearest-rank quantile: the windowed value must be the upper bound of
// the bucket containing the exact value — never below it, at most one
// bucket width above.
TEST(QuantileOverWindowTest, MatchesNearestRankWithinOneBucketBound) {
  sim::Kernel kernel;
  Registry registry;
  TimeSeriesStore store;
  Scraper scraper(kernel, registry, store,
                  Scraper::Options{sim_s(5.0), true});
  Histogram& h = registry.histogram("lat_ms", default_latency_buckets_ms());
  Rng rng(7);
  scraper.start();
  for (int tick = 0; tick < 20; ++tick) {
    for (int i = 0; i < 50; ++i) h.observe(rng.uniform(0.5, 900.0));
    kernel.run_until(sim_s(5.0 * (tick + 1)));
  }
  scraper.stop();
  kernel.run();

  const auto& bounds = h.bounds();
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = h.quantile(q);
    const auto windowed =
        quantile_over_window(store, "lat_ms", "", q, kernel.now(),
                             kernel.now() + sim_s(1.0));
    ASSERT_TRUE(windowed.has_value()) << "q=" << q;
    EXPECT_GE(*windowed, exact) << "bucket bound reports never below";
    // The reported bound is the first bound >= the exact sample: the
    // previous bound must lie strictly below it.
    double prev = 0;
    for (const double b : bounds) {
      if (b == *windowed) break;
      prev = b;
    }
    EXPECT_LT(prev, exact) << "q=" << q << " reported=" << *windowed;
  }
}

TEST(QuantileOverWindowTest, UnscrapedHistogramAndEmptyWindowAreNullopt) {
  TimeSeriesStore store;
  EXPECT_FALSE(quantile_over_window(store, "nope", "", 0.99, sim_s(10.0),
                                    sim_s(10.0))
                   .has_value());
  store.append_histogram("lat_ms", "", sim_s(5.0), {1.0, 5.0}, {1, 2, 3},
                         10.0, 3);
  // Window after the only scrape: no increase anywhere → nullopt.
  EXPECT_FALSE(quantile_over_window(store, "lat_ms", "", 0.99, sim_s(50.0),
                                    sim_s(10.0))
                   .has_value());
}

TEST(ScraperTest, CadenceAndStopContract) {
  sim::Kernel kernel;
  Registry registry;
  TimeSeriesStore store;
  Scraper scraper(kernel, registry, store,
                  Scraper::Options{sim_s(5.0), true});
  registry.gauge("g").set(42);
  scraper.start();
  kernel.run_until(sim_s(30.0));
  // Scrapes at t = 0, 5, ..., 30.
  EXPECT_EQ(scraper.scrapes(), 7u);
  const Series* g = store.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->size(), 7u);
  // The store's own footprint is a scraped gauge.
  const Series* self = store.find("wasmctr_tsdb_store_bytes");
  ASSERT_NE(self, nullptr);
  EXPECT_GT(self->latest()->value, 0.0);
  // stop() cancels the pending event: the kernel drains to quiescence.
  scraper.stop();
  kernel.run();
  EXPECT_EQ(scraper.scrapes(), 7u);
  EXPECT_EQ(kernel.pending(), 0u);
}

}  // namespace
}  // namespace wasmctr::obs::tsdb
