// End-to-end pipeline: Cluster::enable_timeseries drives the scraper +
// memory-attribution collector against real pods, and the MetricsServer's
// windowed mode answers from the store.
#include <gtest/gtest.h>

#include "engines/engine.hpp"
#include "k8s/cluster.hpp"
#include "obs/tsdb/query.hpp"

namespace wasmctr::k8s {
namespace {

void drive(Cluster& cluster, double seconds) {
  // The scraper self-reschedules: tick the kernel rather than run().
  const int ticks = static_cast<int>(seconds);
  for (int i = 0; i < ticks; ++i) cluster.run_for(sim_s(1.0));
}

TEST(TimelinePipelineTest, AttributesNodeMemoryByMappingKind) {
  engines::ScopedTierOverride tier(engines::Tier::kBaseline);
  Cluster cluster;
  TimeSeriesOptions ts;
  ts.scrape.cadence = sim_s(5.0);
  cluster.enable_timeseries(ts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 4).is_ok());
  drive(cluster, 30.0);
  cluster.stop_timeseries();
  cluster.run();

  const auto& store = cluster.timeseries();
  const auto latest = [&](const char* kind) {
    const obs::tsdb::Series* s = store.find(
        "wasmctr_node_mem_bytes",
        obs::label("node", "node-0") + "," + obs::label("kind", kind));
    if (s == nullptr || !s->latest().has_value()) return -1.0;
    return s->latest()->value;
  };
  // Baseline tier maps compiled code + metadata as shared pages; running
  // pods hold anon memory; image layers sit in the page cache.
  EXPECT_GT(latest("wasmcode"), 0.0);
  EXPECT_GT(latest("wasmmeta"), 0.0);
  EXPECT_GT(latest("lib"), 0.0);
  EXPECT_GT(latest("anon"), 0.0);
  EXPECT_GT(latest("cache"), 0.0);

  // The exported kinds partition the node's non-base residency exactly:
  // anon + shared kinds + cache == free-used-over-base + buffcache.
  double sum = 0;
  for (const char* kind :
       {"anon", "wasmcode", "wasmmeta", "lib", "image", "other", "cache"}) {
    const double v = latest(kind);
    ASSERT_GE(v, 0.0) << kind;
    sum += v;
  }
  const mem::FreeReport report = cluster.node().memory().free_report();
  const double expected =
      static_cast<double>((report.used + report.buffcache).value) -
      static_cast<double>(cluster.node().config().base_used.value);
  EXPECT_DOUBLE_EQ(sum, expected);
}

TEST(TimelinePipelineTest, InterpreterTierHasNoWasmCodePages) {
  engines::ScopedTierOverride tier(engines::Tier::kInterpreter);
  Cluster cluster;
  cluster.enable_timeseries();
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2).is_ok());
  drive(cluster, 20.0);
  cluster.stop_timeseries();
  cluster.run();
  const obs::tsdb::Series* s = cluster.timeseries().find(
      "wasmctr_node_mem_bytes",
      obs::label("node", "node-0") + "," + obs::label("kind", "wasmcode"));
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->latest()->value, 0.0);
}

TEST(TimelinePipelineTest, TenantRssGaugeTracksTenantedPods) {
  Cluster cluster;
  cluster.enable_timeseries();
  PodSpec spec;
  spec.name = "tenant-pod";
  spec.image = "microservice:wasm";
  spec.runtime_class = "crun-wamr";
  spec.tenant = "acme";
  ASSERT_TRUE(cluster.deploy_pod(std::move(spec)).is_ok());
  drive(cluster, 20.0);
  cluster.stop_timeseries();
  cluster.run();
  const obs::tsdb::Series* s = cluster.timeseries().find(
      "wasmctr_tenant_rss_bytes", obs::label("tenant", "acme"));
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->latest()->value, 0.0);
}

TEST(TimelinePipelineTest, MetricsServerWindowedModeReadsTheStore) {
  Cluster cluster;
  TimeSeriesOptions ts;
  ts.metrics_window_s = 30.0;
  cluster.enable_timeseries(ts);
  ASSERT_TRUE(cluster.deploy(DeployConfig::kCrunWamr, 2).is_ok());
  drive(cluster, 30.0);

  EXPECT_DOUBLE_EQ(cluster.metrics().window_s(), 30.0);
  const auto pods = cluster.metrics().top_pods();
  ASSERT_EQ(pods.size(), 2u);
  for (const PodMetrics& m : pods) {
    EXPECT_GT(m.working_set.value, 0u);
    // The windowed answer is the max of the pod's scraped series.
    const obs::tsdb::Series* s = cluster.timeseries().find(
        "wasmctr_pod_working_set_bytes", obs::label("pod", m.pod_name));
    ASSERT_NE(s, nullptr) << m.pod_name;
    const auto expected = obs::tsdb::max_over_window(
        *s, cluster.kernel().now(), sim_s(30.0));
    ASSERT_TRUE(expected.has_value());
    EXPECT_DOUBLE_EQ(static_cast<double>(m.working_set.value), *expected);
  }
  cluster.stop_timeseries();
  cluster.run();
}

TEST(TimelinePipelineTest, WindowZeroPreservesInstantaneousReads) {
  // Two identical clusters, one with the pipeline on (window 0): the
  // MetricsServer must answer byte-identically from live cgroups.
  Cluster plain;
  ASSERT_TRUE(plain.deploy(DeployConfig::kCrunWamr, 2).is_ok());
  plain.run();

  Cluster piped;
  piped.enable_timeseries();
  ASSERT_TRUE(piped.deploy(DeployConfig::kCrunWamr, 2).is_ok());
  drive(piped, 30.0);
  piped.stop_timeseries();
  piped.run();

  EXPECT_EQ(plain.metrics_avg_per_container().value,
            piped.metrics_avg_per_container().value);
}

}  // namespace
}  // namespace wasmctr::k8s
