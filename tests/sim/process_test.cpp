#include "sim/process.hpp"

#include <gtest/gtest.h>

namespace wasmctr::sim {
namespace {

class ProcessTest : public ::testing::Test {
 protected:
  mem::NodeMemory node_{Bytes(1_GiB), Bytes(64_MiB)};
  mem::CgroupTree cgroups_;
  ProcessTable procs_{node_};
};

TEST_F(ProcessTest, SpawnAssignsIncreasingPids) {
  auto a = procs_.spawn("crun", nullptr);
  auto b = procs_.spawn("wamr", nullptr);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ(procs_.count(), 2u);
}

TEST_F(ProcessTest, KillReleasesMemory) {
  mem::Cgroup& pod = cgroups_.ensure("pod");
  auto pid = procs_.spawn("app", &pod);
  ASSERT_TRUE(pid.is_ok());
  Process* p = procs_.find(*pid);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->add_anon(Bytes(3_MiB)).is_ok());
  const mem::FileId so = node_.new_file_id();
  ASSERT_TRUE(p->map_shared(so, Bytes(2_MiB)).is_ok());
  EXPECT_EQ(pod.working_set().value, 5_MiB);
  EXPECT_EQ(node_.anon_total().value, 3_MiB);
  ASSERT_TRUE(procs_.kill(*pid).is_ok());
  EXPECT_EQ(pod.working_set().value, 0u);
  EXPECT_EQ(node_.anon_total().value, 0u);
  EXPECT_EQ(node_.shared_resident().value, 0u);
  EXPECT_EQ(procs_.find(*pid), nullptr);
}

TEST_F(ProcessTest, KillUnknownPidFails) {
  EXPECT_EQ(procs_.kill(9999).code(), ErrorCode::kNotFound);
}

TEST_F(ProcessTest, RssCountsFullSharedSize) {
  auto pid = procs_.spawn("p", nullptr);
  Process* p = procs_.find(*pid);
  ASSERT_TRUE(p->add_anon(Bytes(1_MiB)).is_ok());
  const mem::FileId so = node_.new_file_id();
  ASSERT_TRUE(p->map_shared(so, Bytes(4_MiB)).is_ok());
  EXPECT_EQ(p->rss().value, 5_MiB);
}

TEST_F(ProcessTest, PssDividesSharedBetweenMappers) {
  auto p1 = procs_.find(*procs_.spawn("p1", nullptr));
  auto p2 = procs_.find(*procs_.spawn("p2", nullptr));
  const mem::FileId so = node_.new_file_id();
  ASSERT_TRUE(p1->map_shared(so, Bytes(4_MiB)).is_ok());
  ASSERT_TRUE(p2->map_shared(so, Bytes(4_MiB)).is_ok());
  EXPECT_EQ(p1->pss().value, 2_MiB);
  EXPECT_EQ(p2->pss().value, 2_MiB);
  EXPECT_EQ(node_.shared_resident().value, 4_MiB);
}

TEST_F(ProcessTest, DoubleMapSameFileRejected) {
  auto p = procs_.find(*procs_.spawn("p", nullptr));
  const mem::FileId so = node_.new_file_id();
  ASSERT_TRUE(p->map_shared(so, Bytes(1_MiB)).is_ok());
  EXPECT_EQ(p->map_shared(so, Bytes(1_MiB)).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(ProcessTest, AnonShrink) {
  auto p = procs_.find(*procs_.spawn("p", nullptr));
  ASSERT_TRUE(p->add_anon(Bytes(2_MiB)).is_ok());
  p->remove_anon(Bytes(1_MiB));
  EXPECT_EQ(p->anon().value, 1_MiB);
  EXPECT_EQ(node_.anon_total().value, 1_MiB);
}

TEST_F(ProcessTest, ManyProcessesShareOneLibrary) {
  // The crux of the paper's density scaling: engine .so pages are resident
  // once no matter how many containers run.
  const mem::FileId libwamr = node_.new_file_id();
  std::vector<Pid> pids;
  for (int i = 0; i < 100; ++i) {
    auto pid = procs_.spawn("ctr" + std::to_string(i), nullptr);
    ASSERT_TRUE(pid.is_ok());
    Process* p = procs_.find(*pid);
    ASSERT_TRUE(p->map_shared(libwamr, Bytes(3_MiB)).is_ok());
    ASSERT_TRUE(p->add_anon(Bytes(1_MiB)).is_ok());
    pids.push_back(*pid);
  }
  EXPECT_EQ(node_.shared_resident().value, 3_MiB);
  EXPECT_EQ(node_.anon_total().value, 100_MiB);
  for (const Pid pid : pids) ASSERT_TRUE(procs_.kill(pid).is_ok());
  EXPECT_EQ(node_.shared_resident().value, 0u);
  EXPECT_EQ(node_.anon_total().value, 0u);
}

TEST_F(ProcessTest, PidsSortedDeterministic) {
  ASSERT_TRUE(procs_.spawn("a", nullptr).is_ok());
  ASSERT_TRUE(procs_.spawn("b", nullptr).is_ok());
  ASSERT_TRUE(procs_.spawn("c", nullptr).is_ok());
  auto pids = procs_.pids();
  ASSERT_EQ(pids.size(), 3u);
  EXPECT_LT(pids[0], pids[1]);
  EXPECT_LT(pids[1], pids[2]);
}

}  // namespace
}  // namespace wasmctr::sim
