#include "sim/cpu.hpp"

#include <gtest/gtest.h>

namespace wasmctr::sim {
namespace {

TEST(CpuTest, SingleTaskRunsAtFullSpeed) {
  Kernel k;
  CpuScheduler cpu(k, 4);
  SimTime done{};
  cpu.submit(sim_s(2.0), [&] { done = k.now(); });
  k.run();
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-6);
}

TEST(CpuTest, UnderCommittedTasksDoNotContend) {
  Kernel k;
  CpuScheduler cpu(k, 4);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(sim_s(1.0), [&] { done.push_back(to_seconds(k.now())); });
  }
  k.run();
  ASSERT_EQ(done.size(), 4u);
  for (const double t : done) EXPECT_NEAR(t, 1.0, 1e-6);
}

TEST(CpuTest, OverCommittedTasksShareProportionally) {
  // 8 equal tasks on 4 cores: each runs at rate 1/2 → all finish at 2 s.
  Kernel k;
  CpuScheduler cpu(k, 4);
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    cpu.submit(sim_s(1.0), [&] { done.push_back(to_seconds(k.now())); });
  }
  k.run();
  ASSERT_EQ(done.size(), 8u);
  for (const double t : done) EXPECT_NEAR(t, 2.0, 1e-6);
}

TEST(CpuTest, ShortTaskFinishesFirstThenRateRecovers) {
  // Tasks of 1 s and 3 s on 1 core: short ends at 2 s (half rate), long at 4 s
  // (1 s remaining at full rate after the short one leaves... worked example:
  // [0,2]: both at rate 1/2 → short done (1.0), long has 2.0 left;
  // [2,4]: long at rate 1 → done at 4.0).
  Kernel k;
  CpuScheduler cpu(k, 1);
  double short_done = 0;
  double long_done = 0;
  cpu.submit(sim_s(1.0), [&] { short_done = to_seconds(k.now()); });
  cpu.submit(sim_s(3.0), [&] { long_done = to_seconds(k.now()); });
  k.run();
  EXPECT_NEAR(short_done, 2.0, 1e-6);
  EXPECT_NEAR(long_done, 4.0, 1e-6);
}

TEST(CpuTest, LateArrivalSlowsExisting) {
  // 1 core. Task A (2 s) starts at t=0; task B (1 s) arrives at t=1.
  // [0,1]: A alone, 1 s progress (1 s left). [1,3]: both at 1/2 → B done at
  // t=3 (1 s work), A also done at t=3.
  Kernel k;
  CpuScheduler cpu(k, 1);
  double a_done = 0;
  double b_done = 0;
  cpu.submit(sim_s(2.0), [&] { a_done = to_seconds(k.now()); });
  k.schedule_after(sim_s(1.0), [&] {
    cpu.submit(sim_s(1.0), [&] { b_done = to_seconds(k.now()); });
  });
  k.run();
  EXPECT_NEAR(a_done, 3.0, 1e-6);
  EXPECT_NEAR(b_done, 3.0, 1e-6);
}

TEST(CpuTest, AbortRemovesTask) {
  Kernel k;
  CpuScheduler cpu(k, 1);
  bool aborted_ran = false;
  double other_done = 0;
  CpuTaskId id = cpu.submit(sim_s(10.0), [&] { aborted_ran = true; });
  cpu.submit(sim_s(1.0), [&] { other_done = to_seconds(k.now()); });
  k.schedule_after(sim_s(0.5), [&] { cpu.abort(id); });
  k.run();
  EXPECT_FALSE(aborted_ran);
  // [0,0.5]: both at 1/2 → other has 0.75 left; [0.5,1.25]: alone at rate 1.
  EXPECT_NEAR(other_done, 1.25, 1e-6);
}

TEST(CpuTest, ZeroWorkCompletesImmediately) {
  Kernel k;
  CpuScheduler cpu(k, 2);
  bool ran = false;
  cpu.submit(SimDuration::zero(), [&] { ran = true; });
  k.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(k.now().count(), 0);
}

TEST(CpuTest, CallbackCanResubmit) {
  // A chain of bursts models multi-phase startup (fork → exec → load).
  Kernel k;
  CpuScheduler cpu(k, 1);
  double final_done = 0;
  cpu.submit(sim_s(1.0), [&] {
    cpu.submit(sim_s(1.0), [&] { final_done = to_seconds(k.now()); });
  });
  k.run();
  EXPECT_NEAR(final_done, 2.0, 1e-6);
}

// Property: with N identical tasks on C cores, makespan = N·w/C for N ≥ C.
class CpuMakespan : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpuMakespan, MatchesFluidModel) {
  const auto [cores, tasks] = GetParam();
  Kernel k;
  CpuScheduler cpu(k, static_cast<unsigned>(cores));
  int completed = 0;
  for (int i = 0; i < tasks; ++i) {
    cpu.submit(sim_s(0.5), [&] { ++completed; });
  }
  k.run();
  EXPECT_EQ(completed, tasks);
  const double expect =
      tasks <= cores ? 0.5 : 0.5 * static_cast<double>(tasks) / cores;
  EXPECT_NEAR(to_seconds(k.now()), expect, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CpuMakespan,
    ::testing::Combine(::testing::Values(1, 2, 20),
                       ::testing::Values(1, 10, 100, 400)));

TEST(CpuTest, ConsumedCpuAccounting) {
  Kernel k;
  CpuScheduler cpu(k, 2);
  for (int i = 0; i < 6; ++i) cpu.submit(sim_s(0.5), [] {});
  k.run();
  EXPECT_NEAR(cpu.consumed_cpu_seconds(), 3.0, 1e-6);
}

}  // namespace
}  // namespace wasmctr::sim
