#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wasmctr::sim {
namespace {

TEST(KernelTest, StartsAtZero) {
  Kernel k;
  EXPECT_EQ(k.now().count(), 0);
  EXPECT_EQ(k.pending(), 0u);
  EXPECT_FALSE(k.step());
}

TEST(KernelTest, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_after(sim_ms(int64_t{30}), [&] { order.push_back(3); });
  k.schedule_after(sim_ms(int64_t{10}), [&] { order.push_back(1); });
  k.schedule_after(sim_ms(int64_t{20}), [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), sim_ms(int64_t{30}));
}

TEST(KernelTest, FifoWithinSameTimestamp) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.schedule_after(sim_ms(int64_t{7}), [&order, i] { order.push_back(i); });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, NestedSchedulingAdvancesTime) {
  Kernel k;
  SimTime inner_fired{};
  k.schedule_after(sim_ms(int64_t{5}), [&] {
    k.schedule_after(sim_ms(int64_t{5}), [&] { inner_fired = k.now(); });
  });
  k.run();
  EXPECT_EQ(inner_fired, sim_ms(int64_t{10}));
}

TEST(KernelTest, PastDelaysClampToNow) {
  Kernel k;
  bool ran = false;
  k.schedule_after(sim_ms(int64_t{10}), [&] {
    k.schedule_at(sim_ms(int64_t{1}), [&] {
      ran = true;
      EXPECT_EQ(k.now(), sim_ms(int64_t{10})) << "no time travel";
    });
  });
  k.run();
  EXPECT_TRUE(ran);
}

TEST(KernelTest, CancelPreventsExecution) {
  Kernel k;
  bool ran = false;
  EventId id = k.schedule_after(sim_ms(int64_t{5}), [&] { ran = true; });
  k.cancel(id);
  k.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(k.executed(), 0u);
}

TEST(KernelTest, CancelAfterFireIsNoop) {
  Kernel k;
  EventId id = k.schedule_after(sim_ms(int64_t{1}), [] {});
  k.run();
  k.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(k.executed(), 1u);
}

TEST(KernelTest, CancelOneOfMany) {
  Kernel k;
  std::vector<int> order;
  k.schedule_after(sim_ms(int64_t{1}), [&] { order.push_back(1); });
  EventId id = k.schedule_after(sim_ms(int64_t{2}), [&] { order.push_back(2); });
  k.schedule_after(sim_ms(int64_t{3}), [&] { order.push_back(3); });
  k.cancel(id);
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(KernelTest, RunUntilStopsAtDeadline) {
  Kernel k;
  std::vector<int> order;
  k.schedule_after(sim_ms(int64_t{10}), [&] { order.push_back(1); });
  k.schedule_after(sim_ms(int64_t{20}), [&] { order.push_back(2); });
  k.schedule_after(sim_ms(int64_t{30}), [&] { order.push_back(3); });
  k.run_until(sim_ms(int64_t{20}));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(k.pending(), 1u);
  k.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(KernelTest, ManyEventsStressDeterminism) {
  auto run_once = [] {
    Kernel k;
    uint64_t checksum = 0;
    for (int i = 0; i < 1000; ++i) {
      k.schedule_after(sim_us((i * 37) % 211), [&checksum, i, &k] {
        checksum = checksum * 31 + static_cast<uint64_t>(i) +
                   static_cast<uint64_t>(k.now().count());
      });
    }
    k.run();
    return checksum;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace wasmctr::sim
