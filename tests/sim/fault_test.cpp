// FaultInjector unit tests: determinism, rate semantics, per-target caps,
// and the trace used for same-seed comparisons.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

namespace wasmctr::sim {
namespace {

TEST(FaultInjectorTest, DisabledByDefault) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  EXPECT_FALSE(faults.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(faults.should_fault(FaultKind::kCriTransient, "pod-1"));
  }
  EXPECT_EQ(faults.faults_injected(), 0u);
}

TEST(FaultInjectorTest, RateOneAlwaysFires) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  faults.set_rate(FaultKind::kShimCrash, 1.0);
  EXPECT_TRUE(faults.enabled());
  EXPECT_TRUE(faults.should_fault(FaultKind::kShimCrash, "pod-1"));
  // Other kinds keep their zero rate.
  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-1"));
  EXPECT_EQ(faults.faults_injected(), 1u);
}

TEST(FaultInjectorTest, PerTargetCapMakesFaultsTransient) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  faults.set_rate(FaultKind::kCriTransient, 1.0);
  faults.set_max_faults_per_target(3);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (faults.should_fault(FaultKind::kCriTransient, "pod-1")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  // Caps are per (kind, target): a different pod gets its own budget, as
  // does a different kind on the same pod.
  EXPECT_TRUE(faults.should_fault(FaultKind::kCriTransient, "pod-2"));
  faults.set_rate(FaultKind::kWasmTrap, 1.0);
  EXPECT_TRUE(faults.should_fault(FaultKind::kWasmTrap, "pod-1"));
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  auto decisions = [](uint64_t seed) {
    Kernel kernel;
    FaultInjector faults(kernel, seed);
    faults.set_rate_all(0.3);
    std::vector<bool> out;
    for (int pod = 0; pod < 20; ++pod) {
      for (int occ = 0; occ < 5; ++occ) {
        out.push_back(faults.should_fault(FaultKind::kSandboxCreate,
                                          "pod-" + std::to_string(pod)));
      }
    }
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));
}

TEST(FaultInjectorTest, DecisionsIndependentOfInterleaving) {
  // The verdict for (kind, target, occurrence) must not depend on the
  // order decisions are asked in — the property that keeps same-seed
  // event traces identical under concurrent pod startups.
  Kernel kernel;
  FaultInjector forward(kernel, 99);
  FaultInjector backward(kernel, 99);
  forward.set_rate_all(0.5);
  backward.set_rate_all(0.5);

  std::map<std::string, bool> first, second;
  for (int pod = 0; pod < 10; ++pod) {
    const std::string name = "pod-" + std::to_string(pod);
    first[name] = forward.should_fault(FaultKind::kEngineInstantiate, name);
  }
  for (int pod = 9; pod >= 0; --pod) {
    const std::string name = "pod-" + std::to_string(pod);
    second[name] = backward.should_fault(FaultKind::kEngineInstantiate, name);
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, RateRoughlyHonored) {
  Kernel kernel;
  FaultInjector faults(kernel, 1234);
  faults.set_rate(FaultKind::kOomKill, 0.1);
  int fired = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (faults.should_fault(FaultKind::kOomKill,
                            "pod-" + std::to_string(i))) {
      ++fired;
    }
  }
  EXPECT_GT(fired, kTrials / 20);   // > 5 %
  EXPECT_LT(fired, kTrials * 3 / 20);  // < 15 %
}

TEST(FaultInjectorTest, TraceRecordsTimeKindTargetOccurrence) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  faults.set_rate(FaultKind::kShimCrash, 1.0);
  kernel.schedule_after(sim_s(2.5), [&] {
    ASSERT_TRUE(faults.should_fault(FaultKind::kShimCrash, "pod-x"));
  });
  kernel.run();
  ASSERT_EQ(faults.trace().size(), 1u);
  const FaultRecord& r = faults.trace()[0];
  EXPECT_EQ(r.time, sim_s(2.5));
  EXPECT_EQ(r.kind, FaultKind::kShimCrash);
  EXPECT_EQ(r.target, "pod-x");
  EXPECT_EQ(r.occurrence, 0u);
  EXPECT_EQ(faults.trace_string(), "t=2.500000s shim-crash pod-x #0\n");
}

TEST(FaultInjectorTest, SetRateValidatesInput) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  // Out-of-range rates clamp to [0, 1] instead of storing nonsense.
  faults.set_rate(FaultKind::kOomKill, 1.7);
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kOomKill), 1.0);
  EXPECT_TRUE(faults.should_fault(FaultKind::kOomKill, "pod-1"));
  faults.set_rate(FaultKind::kOomKill, -0.3);
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kOomKill), 0.0);
  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-1"));
  // NaN is rejected (treated as 0), so the injector stays disabled.
  faults.set_rate(FaultKind::kShimCrash,
                  std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kShimCrash), 0.0);
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.should_fault(FaultKind::kShimCrash, "pod-1"));
}

TEST(FaultInjectorTest, SetRateAllLeavesNodeScopedKindsAlone) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  faults.set_rate_all(1.0);
  // Container-scoped kinds all picked up the rate...
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kCriTransient), 1.0);
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kOomKill), 1.0);
  // ... but a lifecycle-fault sweep must not start killing whole nodes.
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kNodeCrash), 0.0);
  EXPECT_DOUBLE_EQ(faults.rate(FaultKind::kNodePartition), 0.0);
  EXPECT_FALSE(faults.should_fault(FaultKind::kNodeCrash, "node-0"));
  // Node kinds are still individually settable.
  faults.set_rate(FaultKind::kNodeCrash, 1.0);
  EXPECT_TRUE(faults.should_fault(FaultKind::kNodeCrash, "node-0"));
}

TEST(FaultInjectorTest, EveryKindHasAName) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_STRNE(fault_kind_name(static_cast<FaultKind>(k)), "?");
  }
}

TEST(FaultInjectorTest, ScheduleOnceRejectsPastTimes) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  kernel.run_until(sim_s(10.0));
  const Status past =
      faults.schedule_once(FaultKind::kOomKill, "pod-1", sim_s(5.0));
  EXPECT_EQ(past.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(faults.one_shots_pending(), 0u);
  EXPECT_FALSE(faults.enabled());
  // Arming at exactly now() is fine — "the next decision from here on".
  EXPECT_TRUE(
      faults.schedule_once(FaultKind::kOomKill, "pod-1", sim_s(10.0)).is_ok());
  EXPECT_EQ(faults.one_shots_pending(), 1u);
}

TEST(FaultInjectorTest, ScheduleOnceFiresAtFirstDecisionAtOrAfterT) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  ASSERT_TRUE(
      faults.schedule_once(FaultKind::kOomKill, "pod-1", sim_s(5.0)).is_ok());
  // An armed one-shot must flip enabled() even with every rate at zero,
  // or the callers' fast-path guard would skip the decision point.
  EXPECT_TRUE(faults.enabled());
  EXPECT_EQ(faults.one_shots_pending(), 1u);

  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-1"))
      << "must not fire before t";
  kernel.run_until(sim_s(4.0));
  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-1"));

  kernel.run_until(sim_s(7.0));
  // Other kinds / targets do not consume the arming.
  EXPECT_FALSE(faults.should_fault(FaultKind::kWasmTrap, "pod-1"));
  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-2"));
  EXPECT_TRUE(faults.should_fault(FaultKind::kOomKill, "pod-1"))
      << "first matching decision at or after t fires";
  EXPECT_EQ(faults.faults_injected(), 1u);

  // Consumed: the injector goes quiet again.
  EXPECT_EQ(faults.one_shots_pending(), 0u);
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.should_fault(FaultKind::kOomKill, "pod-1"));
}

TEST(FaultInjectorTest, ScheduleOnceQueuesFireOnePerDecision) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  ASSERT_TRUE(
      faults.schedule_once(FaultKind::kShimCrash, "pod-1", sim_s(20.0))
          .is_ok());
  ASSERT_TRUE(
      faults.schedule_once(FaultKind::kShimCrash, "pod-1", sim_s(10.0))
          .is_ok());
  EXPECT_EQ(faults.one_shots_pending(), 2u);
  kernel.run_until(sim_s(30.0));
  // Both armings are due; each decision consumes exactly one.
  EXPECT_TRUE(faults.should_fault(FaultKind::kShimCrash, "pod-1"));
  EXPECT_EQ(faults.one_shots_pending(), 1u);
  EXPECT_TRUE(faults.should_fault(FaultKind::kShimCrash, "pod-1"));
  EXPECT_EQ(faults.one_shots_pending(), 0u);
  EXPECT_FALSE(faults.should_fault(FaultKind::kShimCrash, "pod-1"));
  EXPECT_EQ(faults.faults_injected(), 2u);
}

TEST(FaultInjectorTest, ScheduleOnceBypassesPerTargetCapAndSharesTrace) {
  Kernel kernel;
  FaultInjector faults(kernel, 42);
  faults.set_rate(FaultKind::kCriTransient, 1.0);
  faults.set_max_faults_per_target(1);
  EXPECT_TRUE(faults.should_fault(FaultKind::kCriTransient, "pod-1"));
  EXPECT_FALSE(faults.should_fault(FaultKind::kCriTransient, "pod-1"))
      << "the cap must stop rate-drawn faults";

  // An explicit instruction is not a random transient: it fires past the
  // cap, advances the shared occurrence counter, and lands in the trace.
  ASSERT_TRUE(
      faults.schedule_once(FaultKind::kCriTransient, "pod-1", kernel.now())
          .is_ok());
  EXPECT_TRUE(faults.should_fault(FaultKind::kCriTransient, "pod-1"));
  EXPECT_EQ(faults.faults_injected(), 2u);
  ASSERT_EQ(faults.trace().size(), 2u);
  EXPECT_EQ(faults.trace()[0].occurrence, 0u);
  EXPECT_EQ(faults.trace()[1].occurrence, 2u)
      << "one-shots advance the same per-(kind,target) occurrence counter";
  EXPECT_NE(faults.trace_string().find("cri-transient pod-1 #2"),
            std::string::npos);
}

}  // namespace
}  // namespace wasmctr::sim
