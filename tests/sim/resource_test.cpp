#include "sim/resource.hpp"

#include <gtest/gtest.h>

namespace wasmctr::sim {
namespace {

TEST(SerialQueueTest, SingleAcquireRunsAfterHold) {
  Kernel k;
  SerialQueue q(k);
  SimTime done{};
  q.acquire(sim_ms(int64_t{50}), [&] { done = k.now(); });
  k.run();
  EXPECT_EQ(done, sim_ms(int64_t{50}));
}

TEST(SerialQueueTest, RequestsSerializeFifo) {
  Kernel k;
  SerialQueue q(k);
  std::vector<int> order;
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    q.acquire(sim_ms(int64_t{10}), [&, i] {
      order.push_back(i);
      times.push_back(k.now());
    });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times[0], sim_ms(int64_t{10}));
  EXPECT_EQ(times[1], sim_ms(int64_t{20}));
  EXPECT_EQ(times[2], sim_ms(int64_t{30}));
}

TEST(SerialQueueTest, LateArrivalQueuesBehindCurrentHold) {
  Kernel k;
  SerialQueue q(k);
  SimTime second_done{};
  q.acquire(sim_ms(int64_t{100}), [] {});
  k.schedule_after(sim_ms(int64_t{30}), [&] {
    q.acquire(sim_ms(int64_t{10}), [&] { second_done = k.now(); });
  });
  k.run();
  EXPECT_EQ(second_done, sim_ms(int64_t{110}))
      << "second request waits for the first hold to finish";
}

TEST(SerialQueueTest, IdleQueueServesImmediately) {
  Kernel k;
  SerialQueue q(k);
  SimTime first{};
  SimTime second{};
  q.acquire(sim_ms(int64_t{10}), [&] { first = k.now(); });
  k.run();
  q.acquire(sim_ms(int64_t{10}), [&] { second = k.now(); });
  k.run();
  EXPECT_EQ(first, sim_ms(int64_t{10}));
  EXPECT_EQ(second, sim_ms(int64_t{20}))
      << "no artificial delay after the queue drained";
}

TEST(SerialQueueTest, BusyTimeAccumulates) {
  Kernel k;
  SerialQueue q(k);
  for (int i = 0; i < 5; ++i) q.acquire(sim_ms(int64_t{7}), [] {});
  EXPECT_EQ(q.queue_depth(), 5u);
  k.run();
  EXPECT_EQ(q.busy_time(), sim_ms(int64_t{35}));
  EXPECT_EQ(q.queue_depth(), 0u);
}

TEST(SerialQueueTest, ReentrantAcquireFromCallback) {
  Kernel k;
  SerialQueue q(k);
  SimTime nested_done{};
  q.acquire(sim_ms(int64_t{10}), [&] {
    q.acquire(sim_ms(int64_t{10}), [&] { nested_done = k.now(); });
  });
  k.run();
  EXPECT_EQ(nested_done, sim_ms(int64_t{20}));
}

}  // namespace
}  // namespace wasmctr::sim
