// Chaos engine integration tests: a full storm against the serving +
// isolation workloads with every oracle attached, same-schedule rerun
// determinism, and the catch-then-shrink loop on a deliberately seeded
// bug (ISSUE 10 acceptance).
#include <gtest/gtest.h>

#include "sim/chaos/orchestrator.hpp"
#include "sim/chaos/shrink.hpp"

namespace wasmctr::chaos {
namespace {

[[nodiscard]] GenerateOptions small_gen() {
  GenerateOptions gen;
  gen.workers = 2;
  gen.storm_s = 60.0;
  return gen;
}

[[nodiscard]] StormOptions small_opts() {
  StormOptions opts;
  opts.workers = 2;
  opts.victim_requests = 60;
  opts.bulk_requests = 60;
  return opts;
}

TEST(ChaosStormTest, CleanStormHoldsEveryInvariant) {
  const StormSchedule schedule = generate_storm(2024, 6, small_gen());
  ChaosOrchestrator orch(small_opts());
  const StormReport report = orch.run(schedule);

  EXPECT_EQ(report.violations, 0u) << report.violation_trace;
  EXPECT_TRUE(report.quiesced)
      << "the drain must reach zero pods and zero bound slots";
  EXPECT_EQ(report.events_executed, schedule.events.size())
      << "every scripted event must execute (or arm) exactly once";
  EXPECT_GT(report.checks_run, 10u)
      << "the periodic sweep must actually have been running";
  EXPECT_GT(report.kernel_events, 0u);
  EXPECT_GT(report.victim_served + report.bulk_served, 0u)
      << "traffic must flow through the storm";
}

TEST(ChaosStormTest, SameScheduleRerunIsByteIdentical) {
  const StormSchedule schedule = generate_storm(7, 4, small_gen());
  ChaosOrchestrator orch(small_opts());
  const StormReport first = orch.run(schedule);
  const StormReport second = orch.run(schedule);
  EXPECT_EQ(first.violations, 0u) << first.violation_trace;
  EXPECT_FALSE(first.bundle.empty());
  EXPECT_EQ(first.bundle, second.bundle)
      << "same schedule, same seed: the composite trace bundle must be "
         "byte-identical";
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.victim_served, second.victim_served);

  // A different seed over the same density must not produce the same run.
  const StormSchedule other = generate_storm(8, 4, small_gen());
  const StormReport third = orch.run(other);
  EXPECT_NE(first.bundle, third.bundle);
}

TEST(ChaosStormTest, SeededBugIsCaughtAndShrunkToMinimalSchedule) {
  const StormSchedule failing = generate_storm(404, 6, small_gen());
  uint32_t tightens = 0;
  for (const ChaosEvent& ev : failing.events) {
    if (ev.kind == ChaosEventKind::kTightenPodLimit) ++tightens;
  }
  ASSERT_GE(tightens, 1u) << "the generator always draws a tighten event";

  // Seeded bug: every executed tighten-pod event leaks 1 MiB of anon on
  // worker 0, so the quiescence residency oracle fails iff the schedule
  // still contains at least one tighten. Traffic off: only the invariant
  // verdict matters to the shrinker, and reruns dominate its cost.
  StormOptions opts = small_opts();
  opts.traffic = false;
  opts.test_bug_leak_on_tighten = true;
  ChaosOrchestrator orch(opts);
  const StormReport broken = orch.run(failing);
  ASSERT_GT(broken.violations, 0u) << "the oracles must catch the bug";
  EXPECT_NE(broken.violation_trace.find("ORACLE quiescence"),
            std::string::npos)
      << broken.violation_trace;

  ScheduleShrinker shrinker(
      [&opts](const StormSchedule& candidate) {
        ChaosOrchestrator rerun(opts);
        return rerun.run(candidate).violations > 0;
      },
      /*max_runs=*/80);
  const ShrinkResult result = shrinker.shrink(failing);

  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.oracle_runs, 0u);
  EXPECT_LT(result.minimal_events, result.original_events);
  ASSERT_EQ(result.minimal.events.size(), 1u)
      << "exactly the one tighten event can remain:\n"
      << result.minimal.to_text();
  EXPECT_EQ(result.minimal.events[0].kind, ChaosEventKind::kTightenPodLimit);
  EXPECT_EQ(result.minimal.density, 1u)
      << "the load axis must shrink to a single bulk replica";
  for (std::size_t k = 0; k < sim::kFaultKindCount; ++k) {
    EXPECT_EQ(result.minimal.rates[k], 0.0)
        << "background rates are irrelevant to this bug and must be zeroed";
  }

  // The minimized reproducer round-trips through the --schedule text form
  // and still fails when replayed — exactly what bench_chaos --replay does.
  const std::string text = result.minimal.to_text();
  const Result<StormSchedule> replay = parse_schedule(text);
  ASSERT_TRUE(replay.is_ok()) << replay.status().to_string();
  EXPECT_EQ(replay.value().to_text(), text);
  ChaosOrchestrator replayer(opts);
  EXPECT_GT(replayer.run(replay.value()).violations, 0u)
      << "replaying the minimal schedule must reproduce the violation";
}

}  // namespace
}  // namespace wasmctr::chaos
