// StormSchedule tests: deterministic generation, the canonical text form,
// and the parser that round-trips minimized reproducers for --replay.
#include "sim/chaos/schedule.hpp"

#include <gtest/gtest.h>

namespace wasmctr::chaos {
namespace {

TEST(ChaosScheduleTest, GenerateIsAPureFunctionOfItsArguments) {
  const StormSchedule a = generate_storm(1234, 10);
  const StormSchedule b = generate_storm(1234, 10);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_NE(a.to_text(), generate_storm(1235, 10).to_text())
      << "a different seed must draw a different storm";
  EXPECT_NE(a.to_text(), generate_storm(1234, 20).to_text())
      << "density is part of the schedule identity";
}

TEST(ChaosScheduleTest, GeneratedStormsAreWellFormed) {
  for (const uint64_t seed : {1ull, 7ull, 404ull, 9999ull}) {
    const StormSchedule s = generate_storm(seed, 12);
    EXPECT_EQ(s.seed, seed);
    EXPECT_EQ(s.density, 12u);
    EXPECT_FALSE(s.events.empty());
    uint32_t kills = 0;
    uint32_t recovers = 0;
    for (std::size_t i = 0; i < s.events.size(); ++i) {
      const ChaosEvent& ev = s.events[i];
      EXPECT_GE(ev.at_s, 0.0);
      EXPECT_LE(ev.at_s, s.storm_s + 40.0);  // recovers trail their kill
      if (i > 0) {
        EXPECT_LE(s.events[i - 1].at_s, ev.at_s) << "events must be sorted";
      }
      if (ev.kind == ChaosEventKind::kKillNode) ++kills;
      if (ev.kind == ChaosEventKind::kRecoverNode) ++recovers;
      if (ev.kind == ChaosEventKind::kPartitionNode) {
        EXPECT_GT(ev.window_s, 0.0);
      }
    }
    EXPECT_GT(kills, 0u) << "every storm exercises the node fault domain";
    EXPECT_EQ(kills, recovers)
        << "every kill must carry a matching scripted recover";
    // Background rates cover the container-scoped kinds and only those:
    // node kinds are reached through scripted events, never via rates.
    for (std::size_t k = 0; k < sim::kFaultKindCount; ++k) {
      const auto kind = static_cast<sim::FaultKind>(k);
      if (sim::fault_kind_is_node_scoped(kind)) {
        EXPECT_EQ(s.rates[k], 0.0) << sim::fault_kind_name(kind);
      } else {
        EXPECT_GT(s.rates[k], 0.0) << sim::fault_kind_name(kind);
      }
    }
  }
}

TEST(ChaosScheduleTest, TextFormRoundTripsExactly) {
  const StormSchedule s = generate_storm(42, 8);
  const std::string text = s.to_text();
  const Result<StormSchedule> parsed = parse_schedule(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().to_text(), text)
      << "to_text(parse(to_text(s))) must be byte-identical";
  EXPECT_EQ(parsed.value().seed, s.seed);
  EXPECT_EQ(parsed.value().density, s.density);
  EXPECT_EQ(parsed.value().storm_s, s.storm_s);
  EXPECT_EQ(parsed.value().rates, s.rates);
  ASSERT_EQ(parsed.value().events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(parsed.value().events[i].to_line(), s.events[i].to_line());
  }
}

TEST(ChaosScheduleTest, EveryEventKindRoundTrips) {
  StormSchedule s;
  s.seed = 7;
  s.density = 3;
  s.storm_s = 30.0;
  s.rates[static_cast<std::size_t>(sim::FaultKind::kOomKill)] = 0.25;
  ChaosEvent ev;
  ev.at_s = 1.0;
  ev.kind = ChaosEventKind::kKillNode;
  ev.node = 2;
  s.events.push_back(ev);
  ev.at_s = 2.0;
  ev.kind = ChaosEventKind::kRecoverNode;
  s.events.push_back(ev);
  ev.at_s = 3.0;
  ev.kind = ChaosEventKind::kPartitionNode;
  ev.node = 1;
  ev.window_s = 12.5;
  s.events.push_back(ev);
  ev = ChaosEvent{};
  ev.at_s = 4.0;
  ev.kind = ChaosEventKind::kTightenPodLimit;
  ev.target = "web-00001";
  ev.value = 8ull << 20;
  s.events.push_back(ev);
  ev = ChaosEvent{};
  ev.at_s = 5.0;
  ev.kind = ChaosEventKind::kDeletePod;
  ev.target = "bulk-00002";
  s.events.push_back(ev);
  ev = ChaosEvent{};
  ev.at_s = 6.0;
  ev.kind = ChaosEventKind::kScaleDeployment;
  ev.target = "bulk";
  ev.value = 1;
  s.events.push_back(ev);
  ev = ChaosEvent{};
  ev.at_s = 7.0;
  ev.kind = ChaosEventKind::kFaultOnce;
  ev.fault = sim::FaultKind::kShimCrash;
  ev.target = "bulk-00000";
  s.events.push_back(ev);

  const Result<StormSchedule> parsed = parse_schedule(s.to_text());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().to_text(), s.to_text());
  ASSERT_EQ(parsed.value().events.size(), 7u);
  EXPECT_EQ(parsed.value().events[2].window_s, 12.5);
  EXPECT_EQ(parsed.value().events[3].value, 8ull << 20);
  EXPECT_EQ(parsed.value().events[6].fault, sim::FaultKind::kShimCrash);
}

TEST(ChaosScheduleTest, ParseErrorsCarryLineNumbers) {
  const auto expect_bad = [](const std::string& text,
                             const std::string& fragment) {
    const Result<StormSchedule> r = parse_schedule(text);
    ASSERT_FALSE(r.is_ok()) << text;
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find(fragment), std::string::npos)
        << r.status().to_string();
  };
  expect_bad("", "missing header");
  expect_bad("seed 1\n", "expected header");
  expect_bad("# wasmctr chaos schedule v1\nbogus 1\n",
             "line 2: unknown directive");
  expect_bad("# wasmctr chaos schedule v1\nrate not-a-kind 0.5\n",
             "unknown fault kind");
  expect_bad("# wasmctr chaos schedule v1\nevent t=1.0\n", "truncated event");
  expect_bad("# wasmctr chaos schedule v1\nevent t=1.0 explode-node node=0\n",
             "unknown chaos event kind");
  expect_bad(
      "# wasmctr chaos schedule v1\n\nevent t=1.0 kill-node reactor=4\n",
      "line 3: unknown event parameter");
  expect_bad("# wasmctr chaos schedule v1\nevent kill-node t=1.0\n",
             "missing t=");
}

TEST(ChaosScheduleTest, ParserAcceptsCommentsAndBlankLines) {
  const std::string text =
      "# wasmctr chaos schedule v1\n"
      "# minimized by ScheduleShrinker\n"
      "seed 99\n"
      "\n"
      "density 4\n"
      "storm_s 15.000000\n"
      "event t=3.500000 delete-pod pod=bulk-00001\n";
  const Result<StormSchedule> r = parse_schedule(text);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().seed, 99u);
  EXPECT_EQ(r.value().density, 4u);
  EXPECT_EQ(r.value().storm_s, 15.0);
  ASSERT_EQ(r.value().events.size(), 1u);
  EXPECT_EQ(r.value().events[0].target, "bulk-00001");
}

}  // namespace
}  // namespace wasmctr::chaos
