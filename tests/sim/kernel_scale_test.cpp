// Scale-engine kernel regressions (DESIGN.md §11): tombstone compaction
// keeps the heap O(pending) under cancel-heavy churn, slot reuse is safe
// against stale EventIds, and a million-event interleaved
// cancel/reschedule storm executes in byte-identical order across
// same-seed runs.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.hpp"

namespace wasmctr::sim {
namespace {

// Regression for the unbounded-heap bug: before compaction landed, every
// schedule-cancel cycle left its entry in the heap forever, so 1M cycles
// meant a 1M-entry heap. Now tombstones are compacted as soon as they
// outnumber live entries: with 1000 persistent events the heap must stay
// ~2 × pending regardless of how many cancels ever happened.
TEST(KernelScaleTest, MillionCancelCyclesKeepHeapBounded) {
  Kernel kernel;
  constexpr std::size_t kPersistent = 1000;
  for (std::size_t i = 0; i < kPersistent; ++i) {
    kernel.schedule_after(sim_s(1e6 + static_cast<double>(i)), [] {});
  }
  std::size_t peak_heap = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id = kernel.schedule_after(sim_s(10.0), [] {});
    kernel.cancel(id);
    peak_heap = std::max(peak_heap, kernel.heap_size());
  }
  EXPECT_EQ(kernel.pending(), kPersistent);
  // Compaction fires once tombstones outnumber live entries, so the heap
  // never exceeds 2 × pending + the cycle's own entry.
  EXPECT_LE(peak_heap, 2 * kPersistent + 2);
  EXPECT_LE(kernel.heap_size(),
            std::max<std::size_t>(2 * kernel.pending(), 64));
  EXPECT_GT(kernel.compactions(), 0u);
  EXPECT_EQ(kernel.executed(), 0u);
}

// A cancelled EventId must never be able to kill the event that recycled
// its slot: the generation check has to miss.
TEST(KernelScaleTest, StaleIdAfterSlotReuseIsNoop) {
  Kernel kernel;
  bool b_fired = false;
  const EventId a = kernel.schedule_after(sim_s(1.0), [] {});
  kernel.cancel(a);  // frees a's slot
  const EventId b =
      kernel.schedule_after(sim_s(2.0), [&] { b_fired = true; });
  EXPECT_NE(a, b);
  kernel.cancel(a);  // stale: generation mismatch, must not touch b
  EXPECT_EQ(kernel.pending(), 1u);
  kernel.run();
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(kernel.executed(), 1u);
}

// The null EventId (value 0) is "no event" and must always be ignored.
TEST(KernelScaleTest, CancelNullIdIsNoop) {
  Kernel kernel;
  kernel.schedule_after(sim_s(1.0), [] {});
  kernel.cancel(EventId{});
  EXPECT_EQ(kernel.pending(), 1u);
  kernel.run();
  EXPECT_EQ(kernel.executed(), 1u);
}

struct ChurnResult {
  uint64_t checksum = 0;
  uint64_t executed = 0;
  uint64_t scheduled = 0;
  uint64_t cancelled = 0;
  uint64_t compactions = 0;
};

// Interleaved schedule / cancel / step churn driven by a seeded Rng. The
// checksum folds in every callback's tag and fire time, so it pins the
// exact execution order — the determinism contract compaction must not
// perturb.
ChurnResult run_churn(uint64_t seed, int ops) {
  Kernel kernel;
  Rng rng(seed);
  ChurnResult r;
  std::vector<EventId> open;
  const auto fire = [&](uint64_t tag) {
    r.checksum = (r.checksum ^ tag) * 1099511628211ull;
    r.checksum =
        (r.checksum ^ static_cast<uint64_t>(kernel.now().count())) *
        1099511628211ull;
  };
  for (int i = 0; i < ops; ++i) {
    const uint64_t roll = rng.next_u64();
    switch (roll % 4) {
      case 0:
      case 1: {  // schedule with a pseudo-random delay
        const uint64_t tag = ++r.scheduled;
        open.push_back(kernel.schedule_after(
            SimDuration{static_cast<int64_t>(roll % 50'000)},
            [&, tag] { fire(tag); }));
        break;
      }
      case 2: {  // cancel a random open handle (may already have fired)
        if (!open.empty()) {
          const std::size_t j = rng.next_below(open.size());
          const std::size_t before = kernel.pending();
          kernel.cancel(open[j]);
          if (kernel.pending() + 1 == before) ++r.cancelled;
          open[j] = open.back();
          open.pop_back();
        }
        break;
      }
      case 3:
        kernel.step();
        break;
    }
  }
  kernel.run();
  EXPECT_EQ(kernel.pending(), 0u);
  r.executed = kernel.executed();
  r.compactions = kernel.compactions();
  return r;
}

TEST(KernelScaleTest, MillionEventChurnAccountingAndDeterminism) {
  constexpr int kOps = 3'000'000;  // ~1.5M schedules → ≥1M executions
  const ChurnResult a = run_churn(0x5eed, kOps);
  EXPECT_GE(a.executed, 1'000'000u);
  // Every scheduled event either executed or was effectively cancelled.
  EXPECT_EQ(a.executed + a.cancelled, a.scheduled);

  // Same seed → byte-identical execution order (checksum covers tag and
  // fire-time of every callback) and an identical compaction history.
  const ChurnResult b = run_churn(0x5eed, kOps);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.compactions, b.compactions);

  // A different seed takes a different trajectory.
  const ChurnResult c = run_churn(0xd1ff, kOps);
  EXPECT_NE(a.checksum, c.checksum);
}

}  // namespace
}  // namespace wasmctr::sim
