// FaultInjector hot-path allocation regression. should_fault() runs on
// every heartbeat of every kubelet, so at 100k pods it must not allocate
// once a target's counter exists: the heterogeneous (kind, string_view)
// lookup has to hit the map without materialising a std::string.
//
// This TU replaces global operator new/delete with counting versions.
// That is per-binary, which is why these tests live in their own
// scale-labeled binary and why the override is compiled out under
// sanitizers (ASan's interposed allocator must stay in charge there —
// the sanitize CI lane still runs the functional assertions).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "sim/kernel.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WASMCTR_NOALLOC_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define WASMCTR_NOALLOC_DISABLED 1
#endif
#endif

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

#if !defined(WASMCTR_NOALLOC_DISABLED)

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !WASMCTR_NOALLOC_DISABLED

namespace wasmctr::sim {
namespace {

uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(FaultNoAllocTest, SteadyStateDecisionsDoNotAllocate) {
  Kernel kernel;
  FaultInjector injector(kernel, 42);
  injector.set_rate(FaultKind::kCriTransient, 1.0);
  injector.set_max_faults_per_target(1);

  // Warm-up: the first decision per target creates its counter entry (and
  // with rate 1.0 injects the single allowed fault, growing the trace).
  const std::string pods[] = {"pod-0", "pod-1", "pod-2", "pod-3"};
  for (const std::string& pod : pods) {
    EXPECT_TRUE(injector.should_fault(FaultKind::kCriTransient, pod));
  }
  ASSERT_EQ(injector.faults_injected(), 4u);

#if defined(WASMCTR_NOALLOC_DISABLED)
  const bool counting = false;
#else
  const bool counting = true;
#endif

  // Steady state: the counter exists and the per-target cap is reached, so
  // every further decision is a pure lookup + counter bump. The key is
  // handed over as a string_view built from a raw char pointer — if the
  // map lookup needed a temporary std::string, the counter would move.
  const uint64_t before = allocations();
  for (int round = 0; round < 1000; ++round) {
    for (const std::string& pod : pods) {
      const std::string_view view{pod.c_str(), pod.size()};
      EXPECT_FALSE(injector.should_fault(FaultKind::kCriTransient, view));
    }
  }
  if (counting) {
    EXPECT_EQ(allocations(), before)
        << "should_fault allocated on the steady-state path";
  } else {
    GTEST_SKIP() << "allocation counting disabled under sanitizers; "
                    "functional assertions above still ran";
  }
}

TEST(FaultNoAllocTest, HeterogeneousKeySharesOccurrenceCounter) {
  Kernel kernel;
  FaultInjector injector(kernel, 7);
  injector.set_rate(FaultKind::kShimCrash, 1.0);
  injector.set_max_faults_per_target(2);

  // The same target spelled via different string objects (and a bare
  // string_view) must resolve to one counter: two injections, then pass.
  const std::string owned = "pod-x";
  char raw[] = "pod-x";
  EXPECT_TRUE(injector.should_fault(FaultKind::kShimCrash, owned));
  EXPECT_TRUE(
      injector.should_fault(FaultKind::kShimCrash, std::string_view{raw}));
  EXPECT_FALSE(injector.should_fault(FaultKind::kShimCrash, "pod-x"));
  EXPECT_EQ(injector.faults_injected(), 2u);

  // A different kind with the same target name is a distinct counter.
  injector.set_rate(FaultKind::kSandboxCreate, 1.0);
  EXPECT_TRUE(injector.should_fault(FaultKind::kSandboxCreate, owned));
  EXPECT_EQ(injector.faults_injected(), 3u);
}

}  // namespace
}  // namespace wasmctr::sim
