#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasm {
namespace {

std::unique_ptr<Instance> instantiate(ModuleBuilder& b, ExecLimits limits = {}) {
  auto bytes = b.build();
  auto m = decode_module(bytes);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok()) << validate_module(*m).to_string();
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty, limits);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  return std::move(*inst);
}

Value run1(Instance& inst, std::string_view name, Value arg) {
  auto r = inst.invoke(name, std::span<const Value>(&arg, 1));
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(r->has_value());
  return **r;
}

TEST(InterpreterTest, ConstAndAdd) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(40).i32_const(2).i32_add().end();
  auto inst = instantiate(b);
  auto r = inst->invoke("f");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 42);
}

TEST(InterpreterTest, ParamsAndLocals) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32, ValType::kI32},
                                {ValType::kI32});
  const uint32_t tmp = f.add_local(ValType::kI32);
  f.local_get(0).local_get(1).i32_mul().local_set(tmp);
  f.local_get(tmp).local_get(0).i32_add();
  f.end();
  auto inst = instantiate(b);
  const Value args[] = {Value::from_i32(6), Value::from_i32(7)};
  auto r = inst->invoke("f", args);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 48);
}

TEST(InterpreterTest, IfElseBothArms) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).if_(ValType::kI32);
  f.i32_const(10);
  f.else_();
  f.i32_const(20);
  f.end();
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(1)).i32(), 10);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(0)).i32(), 20);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(-5)).i32(), 10);
}

TEST(InterpreterTest, IfWithoutElseFallthrough) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t acc = f.add_local(ValType::kI32);
  f.i32_const(1).local_set(acc);
  f.local_get(0).if_();
  f.i32_const(99).local_set(acc);
  f.end();
  f.local_get(acc);
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(1)).i32(), 99);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(0)).i32(), 1);
}

TEST(InterpreterTest, LoopCountsToN) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t i = f.add_local(ValType::kI32);
  const uint32_t sum = f.add_local(ValType::kI32);
  f.loop();
  f.local_get(sum).local_get(i).i32_add().local_set(sum);
  f.local_get(i).i32_const(1).i32_add().local_tee(i);
  f.local_get(0).i32_lt_s().br_if(0);
  f.end();
  f.local_get(sum);
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(10)).i32(), 45);  // 0+..+9
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(100)).i32(), 4950);
}

TEST(InterpreterTest, NestedBlocksBrTable) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.block();   // depth 2 at br_table site
  f.block();   // depth 1
  f.block();   // depth 0
  f.local_get(0).br_table({0, 1}, 2);
  f.end();
  f.i32_const(100).return_();
  f.end();
  f.i32_const(200).return_();
  f.end();
  f.i32_const(300);
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(0)).i32(), 100);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(1)).i32(), 200);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(2)).i32(), 300);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(9)).i32(), 300)
      << "out-of-range selector takes the default";
}

TEST(InterpreterTest, BlockResultValue) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.block(ValType::kI32);
  f.local_get(0).local_get(0).i32_eqz().br_if(0);
  f.i32_const(10).i32_add();
  f.end();
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(0)).i32(), 0)
      << "br_if taken carries the block result";
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(5)).i32(), 15);
}

TEST(InterpreterTest, FunctionCalls) {
  ModuleBuilder b;
  FnBuilder& sq = b.add_function("square", {ValType::kI32}, {ValType::kI32});
  sq.local_get(0).local_get(0).i32_mul().end();
  FnBuilder& f = b.add_function("sum_squares", {ValType::kI32, ValType::kI32},
                                {ValType::kI32});
  f.local_get(0).call(0).local_get(1).call(0).i32_add().end();
  auto inst = instantiate(b);
  const Value args[] = {Value::from_i32(3), Value::from_i32(4)};
  auto r = inst->invoke("sum_squares", args);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 25);
}

TEST(InterpreterTest, RecursionFactorial) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("fact", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).i32_const(2).i32_lt_s();
  f.if_(ValType::kI32);
  f.i32_const(1);
  f.else_();
  f.local_get(0).local_get(0).i32_const(1).i32_sub().call(0).i32_mul();
  f.end();
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "fact", Value::from_i32(10)).i32(), 3628800);
}

TEST(InterpreterTest, CallStackExhaustionTraps) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("inf", {}, {});
  f.call(0).end();
  ExecLimits limits;
  limits.max_call_depth = 64;
  auto inst = instantiate(b, limits);
  auto r = inst->invoke("inf");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTrap);
  EXPECT_NE(r.status().message().find("call stack exhausted"),
            std::string::npos);
}

TEST(InterpreterTest, MemoryLoadStoreRoundtrip) {
  ModuleBuilder b;
  b.add_memory(1, 2);
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.i32_const(100).local_get(0).i32_store();
  f.i32_const(100).i32_load();
  f.end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(-12345)).i32(), -12345);
}

TEST(InterpreterTest, SubWordLoadsSignExtend) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(0).i32_const(0xff).i32_store8();
  f.i32_const(0).i32_load8_u();
  f.end();
  auto inst = instantiate(b);
  auto r = inst->invoke("f");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 255);
}

TEST(InterpreterTest, OutOfBoundsLoadTraps) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).i32_load().end();
  auto inst = instantiate(b);
  const Value edge = Value::from_i32(65536 - 4);
  auto ok = inst->invoke("f", std::span<const Value>(&edge, 1));
  EXPECT_TRUE(ok.is_ok()) << "last aligned word is in bounds";
  const Value past = Value::from_i32(65536 - 3);
  auto bad = inst->invoke("f", std::span<const Value>(&past, 1));
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kTrap);
}

TEST(InterpreterTest, MemoryGrowAndSize) {
  ModuleBuilder b;
  b.add_memory(1, 4);
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).memory_grow().drop().memory_size().end();
  auto inst = instantiate(b);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(2)).i32(), 3);
  EXPECT_EQ(run1(*inst, "f", Value::from_i32(100)).i32(), 3)
      << "growth beyond max fails, size unchanged";
}

TEST(InterpreterTest, MemoryFillAndCopy) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  // fill [0,8) with 0x11, copy 4 bytes to 16, read word at 16.
  f.i32_const(0).i32_const(0x11).i32_const(8).memory_fill();
  f.i32_const(16).i32_const(0).i32_const(4).memory_copy();
  f.i32_const(16).i32_load();
  f.end();
  auto inst = instantiate(b);
  auto r = inst->invoke("f");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).u32(), 0x11111111u);
}

TEST(InterpreterTest, DivTraps) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("div", {ValType::kI32, ValType::kI32},
                                {ValType::kI32});
  f.local_get(0).local_get(1).i32_div_s().end();
  auto inst = instantiate(b);
  const Value by_zero[] = {Value::from_i32(1), Value::from_i32(0)};
  auto r1 = inst->invoke("div", by_zero);
  ASSERT_FALSE(r1.is_ok());
  EXPECT_NE(r1.status().message().find("divide by zero"), std::string::npos);
  const Value overflow[] = {Value::from_i32(std::numeric_limits<int32_t>::min()),
                            Value::from_i32(-1)};
  auto r2 = inst->invoke("div", overflow);
  ASSERT_FALSE(r2.is_ok());
  EXPECT_NE(r2.status().message().find("integer overflow"), std::string::npos);
  const Value fine[] = {Value::from_i32(-7), Value::from_i32(2)};
  auto r3 = inst->invoke("div", fine);
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ((**r3).i32(), -3) << "trunc toward zero";
}

TEST(InterpreterTest, UnreachableTraps) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.unreachable().end();
  auto inst = instantiate(b);
  auto r = inst->invoke("f");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTrap);
  EXPECT_EQ(r.status().message(), "unreachable");
}

TEST(InterpreterTest, GlobalsReadWrite) {
  ModuleBuilder b;
  b.add_global(ValType::kI32, true, 7, "counter");
  FnBuilder& f = b.add_function("bump", {}, {ValType::kI32});
  f.global_get(0).i32_const(1).i32_add().global_set(0);
  f.global_get(0);
  f.end();
  auto inst = instantiate(b);
  auto r1 = inst->invoke("bump");
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ((**r1).i32(), 8);
  auto r2 = inst->invoke("bump");
  EXPECT_EQ((**r2).i32(), 9);
  EXPECT_EQ(inst->global(0).i32(), 9);
}

TEST(InterpreterTest, DataSegmentsInitializeMemory) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  b.add_data(10, "AB");
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(10).i32_load8_u();
  f.end();
  auto inst = instantiate(b);
  auto r = inst->invoke("f");
  EXPECT_EQ((**r).i32(), 'A');
}

TEST(InterpreterTest, StartFunctionRunsAtInstantiation) {
  ModuleBuilder b;
  b.add_global(ValType::kI32, true, 0, "flag");
  FnBuilder& s = b.add_function("", {}, {});
  s.i32_const(123).global_set(0).end();
  b.set_start(0);
  auto inst = instantiate(b);
  EXPECT_EQ(inst->global(0).i32(), 123);
}

TEST(InterpreterTest, HostFunctionRoundtrip) {
  ModuleBuilder b;
  const uint32_t host = b.import_function("env", "add_ten", {ValType::kI32},
                                          {ValType::kI32});
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).call(host).end();
  auto bytes = b.build();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok());
  ImportResolver resolver;
  int call_count = 0;
  resolver.provide("env", "add_ten",
                   HostFunc{{{ValType::kI32}, {ValType::kI32}},
                            [&call_count](Instance&, std::span<const Value> a)
                                -> Result<std::optional<Value>> {
                              ++call_count;
                              return std::optional<Value>(
                                  Value::from_i32(a[0].i32() + 10));
                            }});
  auto inst = Instance::instantiate(std::move(*m), resolver);
  ASSERT_TRUE(inst.is_ok()) << inst.status().to_string();
  EXPECT_EQ(run1(**inst, "f", Value::from_i32(32)).i32(), 42);
  EXPECT_EQ(call_count, 1);
}

TEST(InterpreterTest, UnresolvedImportFailsInstantiation) {
  ModuleBuilder b;
  b.import_function("env", "missing", {}, {});
  auto m = decode_module(b.build());
  ASSERT_TRUE(m.is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  EXPECT_EQ(inst.status().code(), ErrorCode::kNotFound);
}

TEST(InterpreterTest, ImportSignatureMismatchFails) {
  ModuleBuilder b;
  b.import_function("env", "f", {ValType::kI32}, {});
  auto m = decode_module(b.build());
  ASSERT_TRUE(m.is_ok());
  ImportResolver resolver;
  resolver.provide("env", "f",
                   HostFunc{{{ValType::kI64}, {}},
                            [](Instance&, std::span<const Value>)
                                -> Result<std::optional<Value>> {
                              return std::optional<Value>();
                            }});
  auto inst = Instance::instantiate(std::move(*m), resolver);
  EXPECT_EQ(inst.status().code(), ErrorCode::kValidation);
}

TEST(InterpreterTest, FuelMeteringStopsRunawayLoop) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("spin", {}, {});
  f.loop().br(0).end().end();
  ExecLimits limits;
  limits.fuel = 10'000;
  auto inst = instantiate(b, limits);
  auto r = inst->invoke("spin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTrap);
  EXPECT_NE(r.status().message().find("fuel"), std::string::npos);
  EXPECT_EQ(inst->fuel_remaining(), 0u);
}

TEST(InterpreterTest, InstructionsRetiredCounts) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(1).i32_const(2).i32_add().end();
  auto inst = instantiate(b);
  ASSERT_TRUE(inst->invoke("f").is_ok());
  EXPECT_EQ(inst->instructions_retired(), 4u);  // 2 consts, add, end
}

TEST(InterpreterTest, InvokeArgumentValidation) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).end();
  auto inst = instantiate(b);
  auto r0 = inst->invoke("f");
  EXPECT_EQ(r0.status().code(), ErrorCode::kInvalidArgument);
  const Value wrong = Value::from_i64(1);
  auto r1 = inst->invoke("f", std::span<const Value>(&wrong, 1));
  EXPECT_EQ(r1.status().code(), ErrorCode::kInvalidArgument);
  auto r2 = inst->invoke("nonexistent");
  EXPECT_EQ(r2.status().code(), ErrorCode::kNotFound);
}

TEST(InterpreterTest, ResidentBytesGrowsWithMemoryGrow) {
  ModuleBuilder b;
  b.add_memory(1, 64);
  FnBuilder& f = b.add_function("grow", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).memory_grow().end();
  auto inst = instantiate(b);
  const uint64_t before = inst->resident_bytes();
  EXPECT_GE(before, 65536u);
  run1(*inst, "grow", Value::from_i32(10));
  EXPECT_GE(inst->resident_bytes(), before + 10 * 65536u);
}

}  // namespace
}  // namespace wasmctr::wasm
