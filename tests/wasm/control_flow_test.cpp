// Control-flow torture tests: deep nesting, loop/branch interactions, and
// an i64 property sweep against a host reference.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasm {
namespace {

std::unique_ptr<Instance> build(ModuleBuilder& b) {
  auto m = decode_module(b.build());
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok()) << validate_module(*m).to_string();
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  return std::move(*inst);
}

int32_t call1(Instance& inst, const char* name, int32_t arg) {
  const Value v = Value::from_i32(arg);
  auto r = inst.invoke(name, std::span<const Value>(&v, 1));
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return (**r).i32();
}

TEST(ControlFlowTest, DeeplyNestedBlocksBranchOut) {
  // 64 nested blocks; br to depth 63 jumps all the way out.
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  for (int i = 0; i < 64; ++i) f.block();
  f.br(63);
  for (int i = 0; i < 64; ++i) f.end();
  f.i32_const(77);
  f.end();
  auto inst = build(b);
  auto r = inst->invoke("f");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 77);
}

TEST(ControlFlowTest, NestedLoopsComputeProduct) {
  // for i in 0..n: for j in 0..n: acc++  → n*n
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t i = f.add_local(ValType::kI32);
  const uint32_t j = f.add_local(ValType::kI32);
  const uint32_t acc = f.add_local(ValType::kI32);
  f.block();
  f.loop();
  {
    f.local_get(i).local_get(0).i32_ge_s().br_if(1);
    f.i32_const(0).local_set(j);
    f.block();
    f.loop();
    {
      f.local_get(j).local_get(0).i32_ge_s().br_if(1);
      f.local_get(acc).i32_const(1).i32_add().local_set(acc);
      f.local_get(j).i32_const(1).i32_add().local_set(j);
      f.br(0);
    }
    f.end();
    f.end();
    f.local_get(i).i32_const(1).i32_add().local_set(i);
    f.br(0);
  }
  f.end();
  f.end();
  f.local_get(acc);
  f.end();
  auto inst = build(b);
  EXPECT_EQ(call1(*inst, "f", 5), 25);
  EXPECT_EQ(call1(*inst, "f", 13), 169);
  EXPECT_EQ(call1(*inst, "f", 0), 0);
}

TEST(ControlFlowTest, BreakOutOfInnerLoopOnly) {
  // Outer loop runs n times; inner loop breaks at 3 each time → acc = 3n.
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t i = f.add_local(ValType::kI32);
  const uint32_t j = f.add_local(ValType::kI32);
  const uint32_t acc = f.add_local(ValType::kI32);
  f.block();
  f.loop();
  {
    f.local_get(i).local_get(0).i32_ge_s().br_if(1);
    f.i32_const(0).local_set(j);
    f.block();  // inner break target
    f.loop();
    {
      f.local_get(j).i32_const(3).i32_ge_s().br_if(1);  // break inner
      f.local_get(acc).i32_const(1).i32_add().local_set(acc);
      f.local_get(j).i32_const(1).i32_add().local_set(j);
      f.br(0);
    }
    f.end();
    f.end();
    f.local_get(i).i32_const(1).i32_add().local_set(i);
    f.br(0);
  }
  f.end();
  f.end();
  f.local_get(acc);
  f.end();
  auto inst = build(b);
  EXPECT_EQ(call1(*inst, "f", 4), 12);
}

TEST(ControlFlowTest, NestedIfElseLadder) {
  // Classify: x<0 → -1; x==0 → 0; x<10 → 1; else 2.
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).i32_const(0).i32_lt_s();
  f.if_(ValType::kI32);
  f.i32_const(-1);
  f.else_();
  {
    f.local_get(0).i32_eqz();
    f.if_(ValType::kI32);
    f.i32_const(0);
    f.else_();
    {
      f.local_get(0).i32_const(10).i32_lt_s();
      f.if_(ValType::kI32);
      f.i32_const(1);
      f.else_();
      f.i32_const(2);
      f.end();
    }
    f.end();
  }
  f.end();
  f.end();
  auto inst = build(b);
  EXPECT_EQ(call1(*inst, "f", -7), -1);
  EXPECT_EQ(call1(*inst, "f", 0), 0);
  EXPECT_EQ(call1(*inst, "f", 5), 1);
  EXPECT_EQ(call1(*inst, "f", 99), 2);
}

TEST(ControlFlowTest, BrTableInLoopStateMachine) {
  // A 3-state machine driven by br_table; counts transitions until state 2.
  // state 0 -> 1 -> 2. f(start) returns steps taken.
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t state = f.add_local(ValType::kI32);
  const uint32_t steps = f.add_local(ValType::kI32);
  f.local_get(0).local_set(state);
  f.block();  // exit
  f.loop();
  {
    f.block();
    f.block();
    f.block();
    f.local_get(state).br_table({0, 1}, 2);
    f.end();  // state 0 (nesting here: exit, loop, A, B)
    f.i32_const(1).local_set(state);
    f.local_get(steps).i32_const(1).i32_add().local_set(steps);
    f.br(2);  // continue loop
    f.end();  // state 1 (nesting: exit, loop, A)
    f.i32_const(2).local_set(state);
    f.local_get(steps).i32_const(1).i32_add().local_set(steps);
    f.br(1);  // continue loop
    f.end();  // state 2 / default (nesting: exit, loop)
    f.br(1);  // exit
  }
  f.end();
  f.end();
  f.local_get(steps);
  f.end();
  auto inst = build(b);
  EXPECT_EQ(call1(*inst, "f", 0), 2);
  EXPECT_EQ(call1(*inst, "f", 1), 1);
  EXPECT_EQ(call1(*inst, "f", 2), 0);
}

// ---- i64 property sweep against host arithmetic ----

struct I64Case {
  const char* name;
  uint8_t opcode;
  uint64_t (*reference)(uint64_t, uint64_t);
};

uint64_t r_add(uint64_t a, uint64_t b) { return a + b; }
uint64_t r_sub(uint64_t a, uint64_t b) { return a - b; }
uint64_t r_mul(uint64_t a, uint64_t b) { return a * b; }
uint64_t r_xor(uint64_t a, uint64_t b) { return a ^ b; }
uint64_t r_shl(uint64_t a, uint64_t b) { return a << (b & 63); }
uint64_t r_shr(uint64_t a, uint64_t b) { return a >> (b & 63); }
uint64_t r_lts(uint64_t a, uint64_t b) {
  return static_cast<int64_t>(a) < static_cast<int64_t>(b) ? 1 : 0;
}

class I64Sweep : public ::testing::TestWithParam<I64Case> {};

TEST_P(I64Sweep, RandomizedAgainstReference) {
  const I64Case& c = GetParam();
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI64, ValType::kI64},
                                {c.opcode == kI64LtS ? ValType::kI32
                                                     : ValType::kI64});
  f.local_get(0).local_get(1).op(c.opcode).end();
  auto inst = build(b);
  Rng rng(0xfeed);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.next_u64();
    const uint64_t v = rng.next_u64();
    const Value args[] = {Value::from_u64(a), Value::from_u64(v)};
    auto r = inst->invoke("f", args);
    ASSERT_TRUE(r.is_ok());
    const uint64_t got = c.opcode == kI64LtS
                             ? (**r).u32()
                             : (**r).u64();
    ASSERT_EQ(got, c.reference(a, v)) << c.name << "(" << a << "," << v << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, I64Sweep,
    ::testing::Values(I64Case{"add", kI64Add, r_add},
                      I64Case{"sub", kI64Sub, r_sub},
                      I64Case{"mul", kI64Mul, r_mul},
                      I64Case{"xor", kI64Xor, r_xor},
                      I64Case{"shl", kI64Shl, r_shl},
                      I64Case{"shr_u", kI64ShrU, r_shr},
                      I64Case{"lt_s", kI64LtS, r_lts}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace wasmctr::wasm
