#include "wasm/baseline/compiler.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "wasm/baseline/bytecode.hpp"
#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/validator.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::wasm::baseline {
namespace {

std::vector<std::vector<uint8_t>> all_workloads() {
  return {build_minimal_microservice(), build_compute_kernel(),
          build_memory_stress(),        build_table_dispatch(),
          build_file_logger(),          build_request_microservice(),
          build_memory_thrasher(),      build_fuel_burner()};
}

Result<std::shared_ptr<const CompiledModule>> compile(
    const std::vector<uint8_t>& bytes) {
  auto m = decode_module(bytes);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok());
  return compile_module(*m, bytes);
}

TEST(BaselineCompilerTest, CompilesEveryWorkload) {
  for (const auto& bytes : all_workloads()) {
    auto cm = compile(bytes);
    ASSERT_TRUE(cm.is_ok()) << cm.status().to_string();
    const CompileStats& s = (*cm)->stats();
    EXPECT_EQ(s.wasm_bytes, bytes.size());
    EXPECT_GT(s.wasm_ops, 0u);
    EXPECT_GT(s.bytecode_bytes, 0u);
    EXPECT_GT(s.meta_bytes, 0u);
    EXPECT_EQ(s.content_hash, content_hash(bytes));
    EXPECT_GE((*cm)->code_pages(), 1u);
    EXPECT_GE((*cm)->meta_pages(), 1u);
    EXPECT_EQ((*cm)->code_pages(),
              (s.bytecode_bytes + 4095) / 4096);
  }
}

TEST(BaselineCompilerTest, CompilationIsDeterministic) {
  const auto bytes = build_compute_kernel();
  auto a = compile(bytes);
  auto b = compile(bytes);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  ASSERT_EQ((*a)->code_size(), (*b)->code_size());
  EXPECT_EQ(0, std::memcmp((*a)->code(), (*b)->code(), (*a)->code_size()));
  EXPECT_EQ((*a)->stats().fused, (*b)->stats().fused);
}

TEST(BaselineCompilerTest, ContentHashesAreStableAndDistinct) {
  const auto a = build_compute_kernel();
  const auto b = build_table_dispatch();
  EXPECT_EQ(content_hash(a), content_hash(a));
  EXPECT_NE(content_hash(a), content_hash(b));
}

TEST(BaselineCompilerTest, ImportedFunctionsHaveEmptyCodeRange) {
  auto cm = compile(build_minimal_microservice());
  ASSERT_TRUE(cm.is_ok());
  ASSERT_GT((*cm)->num_imported(), 0u);
  for (uint32_t i = 0; i < (*cm)->num_imported(); ++i) {
    const FuncMeta fm = (*cm)->func_meta(i);
    EXPECT_EQ(fm.code_begin, fm.code_end);
  }
  for (uint32_t i = (*cm)->num_imported(); i < (*cm)->num_funcs(); ++i) {
    const FuncMeta fm = (*cm)->func_meta(i);
    EXPECT_LT(fm.code_begin, fm.code_end);
    EXPECT_GE(fm.frame_slots, fm.num_locals);
  }
}

TEST(BaselineCompilerTest, SuperinstructionsFuseAcrossWorkloads) {
  uint64_t fused = 0;
  for (const auto& bytes : all_workloads()) {
    auto cm = compile(bytes);
    ASSERT_TRUE(cm.is_ok());
    fused += (*cm)->stats().fused;
  }
  EXPECT_GT(fused, 0u) << "hot local.get/i32.const pairs must fuse";
}

TEST(BaselineCompilerTest, BytecodeIsDenserThanWasmPerOp) {
  // Not a strict invariant in bytes (fixed-width immediates can beat LEB)
  // but fusion must make ops-in strictly greater than instructions-out
  // for the loop-heavy kernel.
  auto cm = compile(build_compute_kernel());
  ASSERT_TRUE(cm.is_ok());
  EXPECT_GT((*cm)->stats().fused, 0u);
  EXPECT_GT((*cm)->stats().wasm_ops, 0u);
}

// Builds a module exercising every superinstruction plus structural
// control flow, then sweeps the fuel budget one unit at a time comparing
// both tiers' retired-instruction counts, remaining fuel, trap status and
// results. This pins the tier-boundary fuel-clamping rule documented in
// wasm/opcodes.hpp.
std::vector<uint8_t> build_fuel_probe() {
  ModuleBuilder b;
  b.add_memory(1, 4, true);
  FnBuilder& f = b.add_function("work", {ValType::kI32}, {ValType::kI32});
  const uint32_t acc = f.add_local(ValType::kI32);
  f.block();
  f.local_get(0).i32_eqz().br_if(0);
  f.loop();
  f.local_get(acc).i32_const(3).i32_add().local_set(acc);  // inc-set fusion
  f.i32_const(0).i32_const(42).i32_store(8);               // const-store fusion
  f.local_get(0).i32_const(-1).i32_add().local_set(0);     // dec fusion
  f.local_get(0).br_if(0);
  f.end();
  f.local_get(acc).local_get(acc).i32_add().local_set(acc);  // get-get-add
  f.end();
  f.local_get(acc).end();
  return b.build();
}

struct ProbeOutcome {
  bool ok = false;
  std::string message;
  uint64_t retired = 0;
  uint64_t fuel_left = 0;
  int32_t result = 0;
};

ProbeOutcome run_probe(const std::vector<uint8_t>& bytes, bool baseline,
                       uint64_t fuel, int32_t arg) {
  auto m = decode_module(bytes);
  EXPECT_TRUE(m.is_ok());
  EXPECT_TRUE(validate_module(*m).is_ok());
  std::shared_ptr<const CompiledModule> cm;
  if (baseline) {
    auto c = compile_module(*m, bytes);
    EXPECT_TRUE(c.is_ok()) << c.status().to_string();
    cm = *c;
  }
  ImportResolver empty;
  ExecLimits limits;
  limits.fuel = fuel;
  auto inst = Instance::instantiate(std::move(*m), empty, limits, cm);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  const Value a = Value::from_i32(arg);
  auto r = (*inst)->invoke("work", std::span<const Value>(&a, 1));
  ProbeOutcome out;
  out.ok = r.is_ok();
  out.message = r.status().message();
  out.retired = (*inst)->instructions_retired();
  out.fuel_left = (*inst)->fuel_remaining();
  if (r.is_ok() && r->has_value()) out.result = (**r).i32();
  return out;
}

TEST(BaselineCompilerTest, FuelParitySweepAcrossEveryBudget) {
  const auto bytes = build_fuel_probe();
  // Unmetered run to learn the full cost, and to check value parity.
  const ProbeOutcome interp_full = run_probe(bytes, false, 0, 5);
  const ProbeOutcome base_full = run_probe(bytes, true, 0, 5);
  ASSERT_TRUE(interp_full.ok) << interp_full.message;
  ASSERT_TRUE(base_full.ok) << base_full.message;
  EXPECT_EQ(interp_full.result, base_full.result);
  EXPECT_EQ(interp_full.retired, base_full.retired)
      << "unmetered retired counts must match exactly";

  // Every budget from 1 to full-cost+2 must behave identically: same
  // trap/no-trap decision, same retired count, same remaining fuel.
  for (uint64_t fuel = 1; fuel <= interp_full.retired + 2; ++fuel) {
    const ProbeOutcome i = run_probe(bytes, false, fuel, 5);
    const ProbeOutcome b = run_probe(bytes, true, fuel, 5);
    ASSERT_EQ(i.ok, b.ok) << "fuel=" << fuel << " interp=" << i.message
                          << " baseline=" << b.message;
    EXPECT_EQ(i.retired, b.retired) << "fuel=" << fuel;
    EXPECT_EQ(i.fuel_left, b.fuel_left) << "fuel=" << fuel;
    if (!i.ok) {
      EXPECT_EQ(i.message, "all fuel consumed") << "fuel=" << fuel;
      EXPECT_EQ(b.message, "all fuel consumed") << "fuel=" << fuel;
    } else {
      EXPECT_EQ(i.result, b.result) << "fuel=" << fuel;
    }
  }
}

TEST(BaselineCompilerTest, FuelProbeActuallyFuses) {
  const auto bytes = build_fuel_probe();
  auto cm = compile(bytes);
  ASSERT_TRUE(cm.is_ok());
  EXPECT_GE((*cm)->stats().fused, 3u)
      << "probe is built around inc-set, const-store and get-get-add fusions";
}

}  // namespace
}  // namespace wasmctr::wasm::baseline
