// Differential suite: every workload module runs under both execution
// tiers (interpreter and baseline bytecode) and must be observationally
// identical — results, trap codes and messages, memory.grow behaviour,
// retired-instruction counts and remaining fuel.
#include <gtest/gtest.h>

#include "wasi/wasi.hpp"
#include "wasm/baseline/compiler.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/validator.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::wasm {
namespace {

struct TierRun {
  std::unique_ptr<wasi::VirtualFs> fs;
  std::unique_ptr<wasi::WasiContext> ctx;
  std::unique_ptr<Instance> inst;
};

TierRun make_run(const std::vector<uint8_t>& bytes, bool baseline, bool with_wasi,
             uint64_t fuel = 0, bool data_preopen = false) {
  TierRun run;
  auto m = decode_module(bytes);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok());
  ImportResolver resolver;
  if (with_wasi) {
    run.fs = std::make_unique<wasi::VirtualFs>();
    wasi::WasiOptions opts;
    opts.args = {"app.wasm"};
    if (data_preopen) {
      EXPECT_TRUE(run.fs->mkdirs("bundle/data").is_ok());
      opts.preopens = {{"/data", "bundle/data"}};
    }
    run.ctx = std::make_unique<wasi::WasiContext>(std::move(opts), *run.fs);
    run.ctx->register_imports(resolver);
  }
  std::shared_ptr<const baseline::CompiledModule> cm;
  if (baseline) {
    auto c = baseline::compile_module(*m, bytes);
    EXPECT_TRUE(c.is_ok()) << c.status().to_string();
    cm = *c;
  }
  ExecLimits limits;
  limits.fuel = fuel;
  auto inst = Instance::instantiate(std::move(*m), resolver, limits, cm);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  run.inst = std::move(*inst);
  if (baseline) {
    EXPECT_NE(run.inst->compiled(), nullptr);
  } else {
    EXPECT_EQ(run.inst->compiled(), nullptr);
  }
  return run;
}

void expect_same_result(const InvokeResult& a, const InvokeResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.is_ok(), b.is_ok())
      << what << ": interp=" << a.status().to_string()
      << " baseline=" << b.status().to_string();
  if (a.is_ok()) {
    ASSERT_EQ(a->has_value(), b->has_value()) << what;
    if (a->has_value()) {
      EXPECT_TRUE(**a == **b) << what << ": " << (**a).to_string() << " vs "
                              << (**b).to_string();
    }
  } else {
    EXPECT_EQ(a.status().code(), b.status().code()) << what;
    EXPECT_EQ(a.status().message(), b.status().message()) << what;
  }
}

/// Invoke the same export with the same args on both runs and compare the
/// result plus all observable instance state.
void step_both(TierRun& interp, TierRun& base, std::string_view export_name,
               std::span<const Value> args, const std::string& what) {
  auto a = interp.inst->invoke(export_name, args);
  auto b = base.inst->invoke(export_name, args);
  expect_same_result(a, b, what);
  EXPECT_EQ(interp.inst->instructions_retired(),
            base.inst->instructions_retired())
      << what << ": retired-instruction divergence";
  EXPECT_EQ(interp.inst->fuel_remaining(), base.inst->fuel_remaining())
      << what;
  const LinearMemory* ma = interp.inst->memory();
  const LinearMemory* mb = base.inst->memory();
  ASSERT_EQ(ma == nullptr, mb == nullptr) << what;
  if (ma != nullptr) {
    EXPECT_EQ(ma->pages(), mb->pages()) << what << ": memory.grow divergence";
  }
}

TEST(BaselineDifferentialTest, MinimalMicroservice) {
  TierRun interp = make_run(build_minimal_microservice(), false, true);
  TierRun base = make_run(build_minimal_microservice(), true, true);
  step_both(interp, base, "_start", {}, "_start");
  EXPECT_TRUE(interp.ctx->exited() && base.ctx->exited());
  EXPECT_EQ(interp.ctx->exit_code(), base.ctx->exit_code());
  EXPECT_EQ(interp.ctx->stdout_data(), base.ctx->stdout_data());
  EXPECT_EQ(base.ctx->stdout_data(), "hello from wasm microservice\n");
}

TEST(BaselineDifferentialTest, ComputeKernel) {
  TierRun interp = make_run(build_compute_kernel(), false, false);
  TierRun base = make_run(build_compute_kernel(), true, false);
  for (int32_t n : {0, 1, 100, 2000}) {
    const Value arg = Value::from_i32(n);
    step_both(interp, base, "run", std::span<const Value>(&arg, 1),
              "run(" + std::to_string(n) + ")");
  }
}

TEST(BaselineDifferentialTest, MemoryStressGrow) {
  TierRun interp = make_run(build_memory_stress(), false, false);
  TierRun base = make_run(build_memory_stress(), true, false);
  const Value arg = Value::from_i32(16);
  step_both(interp, base, "touch", std::span<const Value>(&arg, 1),
            "touch(16)");
  EXPECT_EQ(interp.inst->memory()->pages(), 16u);
}

TEST(BaselineDifferentialTest, TableDispatchIncludingTraps) {
  TierRun interp = make_run(build_table_dispatch(), false, false);
  TierRun base = make_run(build_table_dispatch(), true, false);
  for (int32_t i = 0; i <= 4; ++i) {  // 4 is out of range -> trap parity
    const Value args[] = {Value::from_i32(i), Value::from_i32(5)};
    step_both(interp, base, "dispatch", args,
              "dispatch(" + std::to_string(i) + ",5)");
  }
}

TEST(BaselineDifferentialTest, FileLoggerThroughWasi) {
  TierRun interp = make_run(build_file_logger(), false, true, 0, true);
  TierRun base = make_run(build_file_logger(), true, true, 0, true);
  step_both(interp, base, "_start", {}, "_start");
  auto fa = interp.fs->read_file("bundle/data/out.log");
  auto fb = base.fs->read_file("bundle/data/out.log");
  ASSERT_TRUE(fa.is_ok() && fb.is_ok());
  EXPECT_EQ(*fa, *fb);
  EXPECT_EQ(*fb, "status=ok\n");
}

TEST(BaselineDifferentialTest, RequestMicroserviceServing) {
  TierRun interp = make_run(build_request_microservice(), false, true);
  TierRun base = make_run(build_request_microservice(), true, true);
  step_both(interp, base, "_start", {}, "_start");
  for (int req = 0; req < 3; ++req) {
    const Value arg = Value::from_i32(50);
    step_both(interp, base, "handle", std::span<const Value>(&arg, 1),
              "handle#" + std::to_string(req));
  }
  EXPECT_EQ(interp.ctx->stdout_data(), base.ctx->stdout_data());
}

// Adversarial tenant #1: the memory thrasher ratchets linear memory up to
// the module max; grow results (including failures at the brink) must
// match across tiers request by request.
TEST(BaselineDifferentialTest, MemoryThrasherGrowRatchet) {
  TierRun interp = make_run(build_memory_thrasher(), false, true);
  TierRun base = make_run(build_memory_thrasher(), true, true);
  for (int req = 0; req < 20; ++req) {
    const Value arg = Value::from_i32(8);
    step_both(interp, base, "handle", std::span<const Value>(&arg, 1),
              "thrash#" + std::to_string(req));
  }
  EXPECT_EQ(base.inst->memory()->pages(), 64u) << "saturated at module max";
}

// Adversarial tenant #2: the fuel burner's per-request instruction burn
// must be identical (ServeSlot charges CPU from these counts).
TEST(BaselineDifferentialTest, FuelBurnerRetiredParity) {
  TierRun interp = make_run(build_fuel_burner(), false, true);
  TierRun base = make_run(build_fuel_burner(), true, true);
  for (int32_t n : {10, 1000, 10000}) {
    const Value arg = Value::from_i32(n);
    step_both(interp, base, "handle", std::span<const Value>(&arg, 1),
              "burn(" + std::to_string(n) + ")");
  }
}

// Adversarial tenant #3: a metered workload that runs out of fuel
// mid-request must trap at the same instruction with the same partial
// memory growth under both tiers.
TEST(BaselineDifferentialTest, FuelExhaustionMidRequest) {
  for (uint64_t fuel : {50u, 500u, 5000u}) {
    TierRun interp = make_run(build_memory_thrasher(), false, true, fuel);
    TierRun base = make_run(build_memory_thrasher(), true, true, fuel);
    const Value arg = Value::from_i32(32);
    step_both(interp, base, "handle", std::span<const Value>(&arg, 1),
              "fuel=" + std::to_string(fuel));
  }
}

TEST(BaselineDifferentialTest, FuelTrapBoundarySweepOnKernel) {
  for (uint64_t fuel : {1u, 7u, 23u, 101u, 997u, 4096u}) {
    TierRun interp = make_run(build_compute_kernel(), false, false, fuel);
    TierRun base = make_run(build_compute_kernel(), true, false, fuel);
    const Value arg = Value::from_i32(100);
    step_both(interp, base, "run", std::span<const Value>(&arg, 1),
              "fuel=" + std::to_string(fuel));
  }
}

}  // namespace
}  // namespace wasmctr::wasm
