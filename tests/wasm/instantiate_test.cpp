// Instantiation-time semantics: segment bounds, start-function traps,
// sandbox memory caps.
#include <gtest/gtest.h>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasm {
namespace {

Result<std::unique_ptr<Instance>> try_instantiate(ModuleBuilder& b,
                                                  ExecLimits limits = {}) {
  auto m = decode_module(b.build());
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok()) << validate_module(*m).to_string();
  ImportResolver empty;
  return Instance::instantiate(std::move(*m), empty, limits);
}

TEST(InstantiateTest, DataSegmentOutOfBoundsTraps) {
  ModuleBuilder b;
  b.add_memory(1, 1);  // 64 KiB
  b.add_data(65534, "ABCD");  // last byte lands at 65537 > 65536
  auto inst = try_instantiate(b);
  ASSERT_FALSE(inst.is_ok());
  EXPECT_EQ(inst.status().code(), ErrorCode::kTrap);
}

TEST(InstantiateTest, DataSegmentExactFitSucceeds) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  b.add_data(65532, "ABCD");  // bytes 65532..65535: exactly in bounds
  EXPECT_TRUE(try_instantiate(b).is_ok());
}

TEST(InstantiateTest, ElementSegmentOutOfBoundsTraps) {
  ModuleBuilder b;
  b.add_table(2, 2);
  FnBuilder& f = b.add_function("f", {}, {});
  f.end();
  b.add_elements(1, {0, 0});  // entries 1..2 in a 2-entry table: OOB
  auto inst = try_instantiate(b);
  ASSERT_FALSE(inst.is_ok());
  EXPECT_EQ(inst.status().code(), ErrorCode::kTrap);
}

TEST(InstantiateTest, TrappingStartFunctionFailsInstantiation) {
  ModuleBuilder b;
  FnBuilder& s = b.add_function("", {}, {});
  s.unreachable().end();
  b.set_start(0);
  auto inst = try_instantiate(b);
  ASSERT_FALSE(inst.is_ok());
  EXPECT_EQ(inst.status().code(), ErrorCode::kTrap);
}

TEST(InstantiateTest, SandboxMemoryCapBelowModuleMinRejected) {
  ModuleBuilder b;
  b.add_memory(8, 16);  // module wants 8 pages minimum
  ExecLimits limits;
  limits.max_memory_pages = 4;  // sandbox allows only 4
  auto inst = try_instantiate(b, limits);
  ASSERT_FALSE(inst.is_ok());
  EXPECT_EQ(inst.status().code(), ErrorCode::kResourceExhausted);
}

TEST(InstantiateTest, SandboxMemoryCapLimitsGrowth) {
  ModuleBuilder b;
  b.add_memory(1, 256);  // module allows growth to 256 pages
  FnBuilder& f = b.add_function("grow", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).memory_grow().end();
  ExecLimits limits;
  limits.max_memory_pages = 4;  // but the sandbox caps at 4
  auto inst = try_instantiate(b, limits);
  ASSERT_TRUE(inst.is_ok()) << inst.status().to_string();
  const Value three = Value::from_i32(3);
  auto ok = (*inst)->invoke("grow", std::span<const Value>(&three, 1));
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ((**ok).i32(), 1) << "growth to 4 pages allowed";
  const Value one = Value::from_i32(1);
  auto blocked = (*inst)->invoke("grow", std::span<const Value>(&one, 1));
  ASSERT_TRUE(blocked.is_ok());
  EXPECT_EQ((**blocked).i32(), -1) << "growth past the sandbox cap refused";
}

TEST(InstantiateTest, GlobalsInitializedFromConstExprs) {
  ModuleBuilder b;
  b.add_global(ValType::kI64, false, -99, "g");
  auto inst = try_instantiate(b);
  ASSERT_TRUE(inst.is_ok());
  EXPECT_EQ((*inst)->global(0).i64(), -99);
}

TEST(InstantiateTest, TableInitializedNullThenFilled) {
  ModuleBuilder b;
  b.add_table(4, 4);
  const uint32_t t = b.add_type({}, {});
  FnBuilder& f0 = b.add_function("f0", {}, {});
  f0.end();
  b.add_elements(2, {0});  // only slot 2 filled
  FnBuilder& caller = b.add_function("call_slot", {ValType::kI32}, {});
  caller.local_get(0).call_indirect(t).end();
  auto inst = try_instantiate(b);
  ASSERT_TRUE(inst.is_ok());
  const Value slot2 = Value::from_i32(2);
  EXPECT_TRUE(
      (*inst)->invoke("call_slot", std::span<const Value>(&slot2, 1)).is_ok());
  const Value slot0 = Value::from_i32(0);
  auto null_call =
      (*inst)->invoke("call_slot", std::span<const Value>(&slot0, 1));
  ASSERT_FALSE(null_call.is_ok());
  EXPECT_NE(null_call.status().message().find("uninitialized element"),
            std::string::npos);
}

}  // namespace
}  // namespace wasmctr::wasm
