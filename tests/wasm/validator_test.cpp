#include "wasm/validator.hpp"

#include <gtest/gtest.h>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::wasm {
namespace {

Result<Module> decode(const std::vector<uint8_t>& bytes) {
  return decode_module(bytes);
}

Status validate_built(ModuleBuilder& b) {
  auto m = decode(b.build());
  if (!m) return m.status();
  return validate_module(*m);
}

TEST(ValidatorTest, WorkloadModulesAllValidate) {
  for (const auto& bytes :
       {build_minimal_microservice(), build_compute_kernel(),
        build_memory_stress(), build_table_dispatch(), build_file_logger()}) {
    auto m = decode(bytes);
    ASSERT_TRUE(m.is_ok());
    EXPECT_TRUE(validate_module(*m).is_ok())
        << validate_module(*m).to_string();
  }
}

TEST(ValidatorTest, StackUnderflowRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_add().end();  // nothing on the stack
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, TypeMismatchRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i64_const(1).i64_const(2).i32_add().end();  // i32.add on i64s
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, MissingResultRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.end();  // returns nothing
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, ExtraValuesOnStackRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(1).end();  // leaves a value behind
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, WrongResultTypeRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI64});
  f.i32_const(1).end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, LocalIndexOutOfRangeRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {});
  f.local_get(5).drop().end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, BranchDepthOutOfRangeRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.block().br(7).end().end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, BranchCarriesBlockResult) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.block(ValType::kI32);
  f.i32_const(42).br(0);
  f.end();
  f.end();
  EXPECT_TRUE(validate_built(b).is_ok());
}

TEST(ValidatorTest, BranchMissingResultRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.block(ValType::kI32);
  f.br(0);  // branch to a value-producing block with empty stack
  f.end();
  f.end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, UnreachableMakesStackPolymorphic) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.unreachable().i32_add().end();  // i32.add consumes phantom values
  EXPECT_TRUE(validate_built(b).is_ok());
}

TEST(ValidatorTest, CodeAfterReturnIsChecked) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(1).return_();
  f.i64_const(2).end();  // dead but ill-typed for the function result
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, IfRequiresI32Condition) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.i64_const(1).if_().end().end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, IfWithResultRequiresElse) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(1).if_(ValType::kI32);
  f.i32_const(2);
  f.end();  // no else branch
  f.end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, IfElseArmsMustAgree) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(1).if_(ValType::kI32);
  f.i32_const(2);
  f.else_();
  f.i64_const(3);  // wrong arm type
  f.end();
  f.end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, ValidIfElse) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).if_(ValType::kI32);
  f.i32_const(10);
  f.else_();
  f.i32_const(20);
  f.end();
  f.end();
  EXPECT_TRUE(validate_built(b).is_ok());
}

TEST(ValidatorTest, SelectOperandsMustMatch) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(1).i64_const(2).i32_const(0).select().drop().end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, GlobalSetImmutableRejected) {
  ModuleBuilder b;
  b.add_global(ValType::kI32, false, 1);
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(2).global_set(0).end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, GlobalSetMutableAccepted) {
  ModuleBuilder b;
  b.add_global(ValType::kI32, true, 1);
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(2).global_set(0).end();
  EXPECT_TRUE(validate_built(b).is_ok());
}

TEST(ValidatorTest, MemoryOpWithoutMemoryRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(0).i32_load().end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, OverAlignedLoadRejected) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.i32_const(0).i32_load(0, /*align=*/3).end();  // natural is 2
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, CallSignatureChecked) {
  ModuleBuilder b;
  FnBuilder& callee = b.add_function("callee", {ValType::kI64}, {});
  callee.end();
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(1).call(0).end();  // i32 passed where i64 expected
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, CallIndexOutOfRangeRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {});
  f.call(3).end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, CallIndirectWithoutTableRejected) {
  ModuleBuilder b;
  b.add_memory(1, 1);
  const uint32_t t = b.add_type({}, {});
  FnBuilder& f = b.add_function("f", {}, {});
  f.i32_const(0).call_indirect(t).end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, BrTableInconsistentTargetsRejected) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {}, {ValType::kI32});
  f.block(ValType::kI32);    // depth 1 target: i32
  f.block();                 // depth 0 target: empty
  f.i32_const(0).br_table({0}, 1);
  f.end();
  f.i32_const(1);
  f.end();
  f.end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, StartMustBeNullary) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {});
  f.end();
  b.set_start(0);
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, ExportIndexOutOfRangeRejected) {
  // Hand-craft: export of function 5 in a module with none.
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
                                7,    5,    1,    1,    'x',  0, 5};
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(validate_module(*m).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, DuplicateExportNamesRejected) {
  ModuleBuilder b;
  FnBuilder& f1 = b.add_function("same", {}, {});
  f1.end();
  FnBuilder& f2 = b.add_function("same", {}, {});
  f2.end();
  EXPECT_EQ(validate_built(b).code(), ErrorCode::kValidation);
}

TEST(ValidatorTest, LoopBranchToLoopHeaderTakesNoValue) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t i = f.add_local(ValType::kI32);
  f.loop();
  f.local_get(i).i32_const(1).i32_add().local_tee(i);
  f.local_get(0).i32_lt_s().br_if(0);
  f.end();
  f.local_get(i);
  f.end();
  EXPECT_TRUE(validate_built(b).is_ok());
}

}  // namespace
}  // namespace wasmctr::wasm
