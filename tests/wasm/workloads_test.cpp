#include "wasm/workloads.hpp"

#include <gtest/gtest.h>

#include "wasi/wasi.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasm {
namespace {

std::unique_ptr<Instance> instantiate_with_wasi(
    const std::vector<uint8_t>& bytes, wasi::WasiContext& ctx) {
  auto m = decode_module(bytes);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok());
  ImportResolver resolver;
  ctx.register_imports(resolver);
  auto inst = Instance::instantiate(std::move(*m), resolver);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  return std::move(*inst);
}

TEST(WorkloadsTest, MicroserviceRunsAndPrints) {
  wasi::VirtualFs fs;
  wasi::WasiOptions opts;
  opts.args = {"microservice.wasm"};
  wasi::WasiContext ctx(std::move(opts), fs);
  auto inst = instantiate_with_wasi(build_minimal_microservice(), ctx);
  auto r = inst->invoke("_start");
  // _start ends in proc_exit(0), surfacing as the proc_exit trap.
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().message(), "proc_exit");
  EXPECT_TRUE(ctx.exited());
  EXPECT_EQ(ctx.exit_code(), 0u);
  EXPECT_EQ(ctx.stdout_data(), "hello from wasm microservice\n");
}

TEST(WorkloadsTest, ComputeKernelDeterministic) {
  auto m = decode_module(build_compute_kernel());
  ASSERT_TRUE(m.is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  ASSERT_TRUE(inst.is_ok());
  auto run = [&](int32_t n) {
    const Value arg = Value::from_i32(n);
    auto r = (*inst)->invoke("run", std::span<const Value>(&arg, 1));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return (**r).u32();
  };
  const uint32_t r100a = run(100);
  const uint32_t r100b = run(100);
  EXPECT_EQ(r100a, r100b) << "kernel must be deterministic";
  EXPECT_NE(run(100), run(101));
  EXPECT_NE(run(1000), run(100));
}

TEST(WorkloadsTest, MemoryStressGrowsAndFaults) {
  auto m = decode_module(build_memory_stress());
  ASSERT_TRUE(m.is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  ASSERT_TRUE(inst.is_ok());
  const uint64_t before = (*inst)->resident_bytes();
  const Value arg = Value::from_i32(16);
  auto r = (*inst)->invoke("touch", std::span<const Value>(&arg, 1));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ((**r).i32(), 16);
  EXPECT_GE((*inst)->resident_bytes(), before + 15 * 65536)
      << "15 new pages must be resident";
}

TEST(WorkloadsTest, TableDispatchSelectsFunctions) {
  auto m = decode_module(build_table_dispatch());
  ASSERT_TRUE(m.is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  ASSERT_TRUE(inst.is_ok());
  auto run = [&](int32_t i, int32_t x) {
    const Value args[] = {Value::from_i32(i), Value::from_i32(x)};
    auto r = (*inst)->invoke("dispatch", args);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return (**r).i32();
  };
  EXPECT_EQ(run(0, 5), 6);    // inc
  EXPECT_EQ(run(1, 5), 10);   // dbl
  EXPECT_EQ(run(2, 5), 25);   // square
  EXPECT_EQ(run(3, 5), -5);   // neg
}

TEST(WorkloadsTest, TableDispatchOutOfRangeTraps) {
  auto m = decode_module(build_table_dispatch());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  const Value args[] = {Value::from_i32(4), Value::from_i32(1)};
  auto r = (*inst)->invoke("dispatch", args);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTrap);
  EXPECT_NE(r.status().message().find("undefined element"), std::string::npos);
}

TEST(WorkloadsTest, FileLoggerWritesThroughPreopen) {
  wasi::VirtualFs fs;
  ASSERT_TRUE(fs.mkdirs("bundle/data").is_ok());
  wasi::WasiOptions opts;
  opts.args = {"logger.wasm"};
  opts.preopens = {{"/data", "bundle/data"}};
  wasi::WasiContext ctx(std::move(opts), fs);
  auto inst = instantiate_with_wasi(build_file_logger(), ctx);
  auto r = inst->invoke("_start");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().message(), "proc_exit");
  EXPECT_EQ(ctx.exit_code(), 0u);
  auto contents = fs.read_file("bundle/data/out.log");
  ASSERT_TRUE(contents.is_ok()) << contents.status().to_string();
  EXPECT_EQ(*contents, "status=ok\n");
}

TEST(WorkloadsTest, MicroserviceUnderFuelBudget) {
  // The paper's minimal workload must be tiny: it should finish well under
  // 100k instructions (memory/startup dominated by the runtime, §IV-A).
  wasi::VirtualFs fs;
  wasi::WasiOptions opts;
  opts.args = {"m.wasm"};
  wasi::WasiContext ctx(std::move(opts), fs);
  auto bytes = build_minimal_microservice();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok());
  ImportResolver resolver;
  ctx.register_imports(resolver);
  ExecLimits limits;
  limits.fuel = 100'000;
  auto inst = Instance::instantiate(std::move(*m), resolver, limits);
  ASSERT_TRUE(inst.is_ok());
  auto r = (*inst)->invoke("_start");
  EXPECT_EQ(r.status().message(), "proc_exit") << "must not run out of fuel";
  EXPECT_LT((*inst)->instructions_retired(), 100'000u);
}

TEST(WorkloadsTest, MemoryThrasherGrowsPerRequestUpToModuleMax) {
  // Serving workloads import wasi fd_write, so instantiate with WASI.
  wasi::VirtualFs fs;
  wasi::WasiOptions wopts;
  wopts.args = {"thrasher.wasm"};
  wasi::WasiContext ctx(std::move(wopts), fs);
  auto inst = instantiate_with_wasi(build_memory_thrasher(), ctx);
  ASSERT_NE(inst, nullptr);
  auto handle = [&](int32_t n) {
    const Value arg = Value::from_i32(n);
    auto r = inst->invoke("handle", std::span<const Value>(&arg, 1));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return (**r).i32();
  };
  EXPECT_EQ(handle(4), 6) << "2 start pages + 4 grown";
  const uint64_t after_first = inst->resident_bytes();
  EXPECT_EQ(handle(4), 10) << "growth must ratchet across requests";
  EXPECT_GE(inst->resident_bytes(), after_first + 4 * 65536)
      << "each request's new pages must be faulted in";
  // Thrash to the brink: growth saturates at the 64-page module max and
  // further requests are swallowed, not trapped.
  for (int i = 0; i < 20; ++i) handle(8);
  EXPECT_EQ(handle(8), 64) << "growth must cap at the module max";
  EXPECT_EQ(handle(8), 64);
}

TEST(WorkloadsTest, FuelBurnerBurnsProportionallyAndStaysFlat) {
  wasi::VirtualFs fs;
  wasi::WasiOptions wopts;
  wopts.args = {"burner.wasm"};
  wasi::WasiContext ctx(std::move(wopts), fs);
  auto inst = instantiate_with_wasi(build_fuel_burner(), ctx);
  ASSERT_NE(inst, nullptr);
  auto burn = [&](int32_t n) {
    const uint64_t before = inst->instructions_retired();
    const Value arg = Value::from_i32(n);
    auto r = inst->invoke("handle", std::span<const Value>(&arg, 1));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return inst->instructions_retired() - before;
  };
  // One warmup request faults in the pages the handler touches (iovec
  // scratch, greeting); from then on the footprint must stay flat.
  burn(10);
  const uint64_t resident = inst->resident_bytes();
  const uint64_t cost_1k = burn(1000);
  const uint64_t cost_10k = burn(10000);
  EXPECT_GT(cost_10k, 8 * cost_1k)
      << "fuel burned must scale with the request argument";
  EXPECT_EQ(inst->resident_bytes(), resident)
      << "the fuel burner must stay memory-innocent";
  // Same seed constants every invoke: the result is deterministic.
  const Value arg = Value::from_i32(500);
  auto a = inst->invoke("handle", std::span<const Value>(&arg, 1));
  auto b = inst->invoke("handle", std::span<const Value>(&arg, 1));
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ((**a).i32(), (**b).i32());
}

}  // namespace
}  // namespace wasmctr::wasm
