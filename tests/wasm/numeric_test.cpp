// Parameterized coverage of the numeric instruction set: each case builds a
// one-instruction module, runs it, and compares against a host-computed
// reference.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/exec/instance.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasm {
namespace {

/// Run a single binary i32 op over two operands.
uint32_t run_i32_binop(uint8_t opcode, uint32_t a, uint32_t b) {
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kI32, ValType::kI32},
                                 {ValType::kI32});
  f.local_get(0).local_get(1).op(opcode).end();
  auto m = decode_module(mb.build());
  EXPECT_TRUE(m.is_ok());
  EXPECT_TRUE(validate_module(*m).is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  EXPECT_TRUE(inst.is_ok());
  const Value args[] = {Value::from_u32(a), Value::from_u32(b)};
  auto r = (*inst)->invoke("f", args);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return (**r).u32();
}

struct I32Case {
  const char* name;
  uint8_t opcode;
  uint32_t (*reference)(uint32_t, uint32_t);
};

uint32_t ref_add(uint32_t a, uint32_t b) { return a + b; }
uint32_t ref_sub(uint32_t a, uint32_t b) { return a - b; }
uint32_t ref_mul(uint32_t a, uint32_t b) { return a * b; }
uint32_t ref_and(uint32_t a, uint32_t b) { return a & b; }
uint32_t ref_or(uint32_t a, uint32_t b) { return a | b; }
uint32_t ref_xor(uint32_t a, uint32_t b) { return a ^ b; }
uint32_t ref_shl(uint32_t a, uint32_t b) { return a << (b & 31); }
uint32_t ref_shru(uint32_t a, uint32_t b) { return a >> (b & 31); }
uint32_t ref_shrs(uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
}
uint32_t ref_rotl(uint32_t a, uint32_t b) {
  return std::rotl(a, static_cast<int>(b & 31));
}
uint32_t ref_rotr(uint32_t a, uint32_t b) {
  return std::rotr(a, static_cast<int>(b & 31));
}
uint32_t ref_lts(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
}
uint32_t ref_ltu(uint32_t a, uint32_t b) { return a < b ? 1 : 0; }
uint32_t ref_ges(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a) >= static_cast<int32_t>(b) ? 1 : 0;
}
uint32_t ref_eq(uint32_t a, uint32_t b) { return a == b ? 1 : 0; }
uint32_t ref_ne(uint32_t a, uint32_t b) { return a != b ? 1 : 0; }

class I32BinopSweep : public ::testing::TestWithParam<I32Case> {};

TEST_P(I32BinopSweep, MatchesReference) {
  const I32Case& c = GetParam();
  const uint32_t interesting[] = {0u,
                                  1u,
                                  2u,
                                  31u,
                                  32u,
                                  0x7fffffffu,
                                  0x80000000u,
                                  0xffffffffu,
                                  0x12345678u,
                                  0xdeadbeefu};
  for (const uint32_t a : interesting) {
    for (const uint32_t b : interesting) {
      EXPECT_EQ(run_i32_binop(c.opcode, a, b), c.reference(a, b))
          << c.name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, I32BinopSweep,
    ::testing::Values(I32Case{"add", kI32Add, ref_add},
                      I32Case{"sub", kI32Sub, ref_sub},
                      I32Case{"mul", kI32Mul, ref_mul},
                      I32Case{"and", kI32And, ref_and},
                      I32Case{"or", kI32Or, ref_or},
                      I32Case{"xor", kI32Xor, ref_xor},
                      I32Case{"shl", kI32Shl, ref_shl},
                      I32Case{"shr_u", kI32ShrU, ref_shru},
                      I32Case{"shr_s", kI32ShrS, ref_shrs},
                      I32Case{"rotl", kI32Rotl, ref_rotl},
                      I32Case{"rotr", kI32Rotr, ref_rotr},
                      I32Case{"lt_s", kI32LtS, ref_lts},
                      I32Case{"lt_u", kI32LtU, ref_ltu},
                      I32Case{"ge_s", kI32GeS, ref_ges},
                      I32Case{"eq", kI32Eq, ref_eq},
                      I32Case{"ne", kI32Ne, ref_ne}),
    [](const auto& info) { return info.param.name; });

/// Unary op helper.
template <typename ArgMaker>
Value run_unop(uint8_t opcode, ValType in, ValType out, ArgMaker make_arg) {
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {in}, {out});
  f.local_get(0).op(opcode).end();
  auto m = decode_module(mb.build());
  EXPECT_TRUE(validate_module(*m).is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  const Value arg = make_arg();
  auto r = (*inst)->invoke("f", std::span<const Value>(&arg, 1));
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return **r;
}

TEST(NumericTest, CountingOps) {
  auto clz = [](uint32_t v) {
    return run_unop(kI32Clz, ValType::kI32, ValType::kI32,
                    [v] { return Value::from_u32(v); })
        .u32();
  };
  EXPECT_EQ(clz(0), 32u);
  EXPECT_EQ(clz(1), 31u);
  EXPECT_EQ(clz(0x80000000u), 0u);
  auto ctz = [](uint32_t v) {
    return run_unop(kI32Ctz, ValType::kI32, ValType::kI32,
                    [v] { return Value::from_u32(v); })
        .u32();
  };
  EXPECT_EQ(ctz(0), 32u);
  EXPECT_EQ(ctz(8), 3u);
  auto popcnt = [](uint32_t v) {
    return run_unop(kI32Popcnt, ValType::kI32, ValType::kI32,
                    [v] { return Value::from_u32(v); })
        .u32();
  };
  EXPECT_EQ(popcnt(0xffffffffu), 32u);
  EXPECT_EQ(popcnt(0x10101010u), 4u);
}

TEST(NumericTest, SignExtensionOps) {
  EXPECT_EQ(run_unop(kI32Extend8S, ValType::kI32, ValType::kI32,
                     [] { return Value::from_u32(0x80); })
                .i32(),
            -128);
  EXPECT_EQ(run_unop(kI32Extend16S, ValType::kI32, ValType::kI32,
                     [] { return Value::from_u32(0x8000); })
                .i32(),
            -32768);
  EXPECT_EQ(run_unop(kI64Extend32S, ValType::kI64, ValType::kI64,
                     [] { return Value::from_u64(0x80000000u); })
                .i64(),
            -2147483648LL);
}

TEST(NumericTest, WrapAndExtend) {
  EXPECT_EQ(run_unop(kI32WrapI64, ValType::kI64, ValType::kI32,
                     [] { return Value::from_u64(0x100000002ull); })
                .u32(),
            2u);
  EXPECT_EQ(run_unop(kI64ExtendI32S, ValType::kI32, ValType::kI64,
                     [] { return Value::from_i32(-1); })
                .i64(),
            -1);
  EXPECT_EQ(run_unop(kI64ExtendI32U, ValType::kI32, ValType::kI64,
                     [] { return Value::from_i32(-1); })
                .u64(),
            0xffffffffull);
}

TEST(NumericTest, FloatArithmetic) {
  EXPECT_FLOAT_EQ(run_unop(kF32Sqrt, ValType::kF32, ValType::kF32,
                           [] { return Value::from_f32(9.0f); })
                      .f32(),
                  3.0f);
  EXPECT_DOUBLE_EQ(run_unop(kF64Neg, ValType::kF64, ValType::kF64,
                            [] { return Value::from_f64(2.5); })
                       .f64(),
                   -2.5);
  EXPECT_DOUBLE_EQ(run_unop(kF64Floor, ValType::kF64, ValType::kF64,
                            [] { return Value::from_f64(-1.5); })
                       .f64(),
                   -2.0);
  // nearest = round-half-to-even
  EXPECT_DOUBLE_EQ(run_unop(kF64Nearest, ValType::kF64, ValType::kF64,
                            [] { return Value::from_f64(2.5); })
                       .f64(),
                   2.0);
  EXPECT_DOUBLE_EQ(run_unop(kF64Nearest, ValType::kF64, ValType::kF64,
                            [] { return Value::from_f64(3.5); })
                       .f64(),
                   4.0);
}

double run_f64_binop(uint8_t opcode, double a, double b) {
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kF64, ValType::kF64},
                                 {ValType::kF64});
  f.local_get(0).local_get(1).op(opcode).end();
  auto m = decode_module(mb.build());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  const Value args[] = {Value::from_f64(a), Value::from_f64(b)};
  auto r = (*inst)->invoke("f", args);
  EXPECT_TRUE(r.is_ok());
  return (**r).f64();
}

TEST(NumericTest, FloatMinMaxSpecSemantics) {
  EXPECT_TRUE(std::isnan(run_f64_binop(kF64Min, 1.0, std::nan(""))));
  EXPECT_TRUE(std::isnan(run_f64_binop(kF64Max, std::nan(""), 1.0)));
  EXPECT_TRUE(
      std::signbit(run_f64_binop(kF64Min, 0.0, -0.0)))
      << "min(+0,-0) = -0";
  EXPECT_FALSE(
      std::signbit(run_f64_binop(kF64Max, 0.0, -0.0)))
      << "max(+0,-0) = +0";
  EXPECT_DOUBLE_EQ(run_f64_binop(kF64Min, 3.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(run_f64_binop(kF64Max, 3.0, 2.0), 3.0);
}

TEST(NumericTest, TruncationTraps) {
  auto trunc_i32_f64 = [](double v) {
    ModuleBuilder mb;
    FnBuilder& f = mb.add_function("f", {ValType::kF64}, {ValType::kI32});
    f.local_get(0).op(kI32TruncF64S).end();
    auto m = decode_module(mb.build());
    ImportResolver empty;
    auto inst = Instance::instantiate(std::move(*m), empty);
    const Value arg = Value::from_f64(v);
    return (*inst)->invoke("f", std::span<const Value>(&arg, 1));
  };
  auto ok = trunc_i32_f64(-3.7);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ((**ok).i32(), -3);
  EXPECT_EQ(trunc_i32_f64(std::nan("")).status().code(), ErrorCode::kTrap);
  EXPECT_EQ(trunc_i32_f64(3e9).status().code(), ErrorCode::kTrap);
  EXPECT_EQ(trunc_i32_f64(-3e9).status().code(), ErrorCode::kTrap);
  auto edge = trunc_i32_f64(2147483647.0);
  ASSERT_TRUE(edge.is_ok());
  EXPECT_EQ((**edge).i32(), 2147483647);
}

TEST(NumericTest, SaturatingTruncationNeverTraps) {
  // local.get 0; 0xFC 0x02 (i32.trunc_sat_f64_s); end
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kF64}, {ValType::kI32});
  f.local_get(0).op(kPrefixFC).op(0x02).end();  // i32.trunc_sat_f64_s
  auto m = decode_module(mb.build());
  ASSERT_TRUE(m.is_ok());
  ASSERT_TRUE(validate_module(*m).is_ok());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  auto run = [&](double v) {
    const Value arg = Value::from_f64(v);
    auto r = (*inst)->invoke("f", std::span<const Value>(&arg, 1));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return (**r).i32();
  };
  EXPECT_EQ(run(std::nan("")), 0);
  EXPECT_EQ(run(1e20), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(run(-1e20), std::numeric_limits<int32_t>::min());
  EXPECT_EQ(run(-42.9), -42);
}

TEST(NumericTest, ReinterpretRoundtrips) {
  const double d = 1234.5678;
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kF64}, {ValType::kF64});
  f.local_get(0).op(kI64ReinterpretF64).op(kF64ReinterpretI64).end();
  auto m = decode_module(mb.build());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  const Value arg = Value::from_f64(d);
  auto r = (*inst)->invoke("f", std::span<const Value>(&arg, 1));
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ((**r).f64(), d);
}

TEST(NumericTest, I64Arithmetic) {
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kI64, ValType::kI64},
                                 {ValType::kI64});
  f.local_get(0).local_get(1).i64_mul().end();
  auto m = decode_module(mb.build());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  const Value args[] = {Value::from_i64(1ll << 40), Value::from_i64(3)};
  auto r = (*inst)->invoke("f", args);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i64(), 3ll << 40);
}

TEST(NumericTest, RemainderSemantics) {
  // rem_s: sign follows the dividend; INT_MIN % -1 = 0 (no trap).
  ModuleBuilder mb;
  FnBuilder& f = mb.add_function("f", {ValType::kI32, ValType::kI32},
                                 {ValType::kI32});
  f.local_get(0).local_get(1).i32_rem_s().end();
  auto m = decode_module(mb.build());
  ImportResolver empty;
  auto inst = Instance::instantiate(std::move(*m), empty);
  auto run = [&](int32_t a, int32_t b) {
    const Value args[] = {Value::from_i32(a), Value::from_i32(b)};
    auto r = (*inst)->invoke("f", args);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return (**r).i32();
  };
  EXPECT_EQ(run(7, 3), 1);
  EXPECT_EQ(run(-7, 3), -1);
  EXPECT_EQ(run(7, -3), 1);
  EXPECT_EQ(run(std::numeric_limits<int32_t>::min(), -1), 0);
}

}  // namespace
}  // namespace wasmctr::wasm
