#include "wasm/decoder.hpp"

#include <gtest/gtest.h>

#include "wasm/builder.hpp"
#include "wasm/workloads.hpp"

namespace wasmctr::wasm {
namespace {

std::vector<uint8_t> minimal_module() {
  ModuleBuilder b;
  return b.build();
}

TEST(DecoderTest, EmptyModuleDecodes) {
  auto bytes = minimal_module();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(m->types.empty());
  EXPECT_EQ(m->num_funcs(), 0u);
}

TEST(DecoderTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x00, 0x01, 0, 0, 0};
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsBadVersion) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x02, 0, 0, 0};
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73};
  EXPECT_FALSE(decode_module(bytes).is_ok());
}

TEST(DecoderTest, DecodesFunctionWithBody) {
  ModuleBuilder b;
  FnBuilder& f = b.add_function("f", {ValType::kI32}, {ValType::kI32});
  f.local_get(0).i32_const(1).i32_add().end();
  auto bytes = b.build();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  ASSERT_EQ(m->functions.size(), 1u);
  ASSERT_EQ(m->bodies.size(), 1u);
  EXPECT_EQ(m->exports.size(), 1u);
  EXPECT_EQ(m->exports[0].name, "f");
  EXPECT_EQ(m->bodies[0].code.back(), 0x0b);
}

TEST(DecoderTest, DecodesImports) {
  ModuleBuilder b;
  b.import_function("wasi_snapshot_preview1", "proc_exit", {ValType::kI32},
                    {});
  auto bytes = b.build();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok());
  ASSERT_EQ(m->imports.size(), 1u);
  EXPECT_EQ(m->imports[0].module, "wasi_snapshot_preview1");
  EXPECT_EQ(m->imports[0].name, "proc_exit");
  EXPECT_EQ(m->num_funcs(), 1u);
  EXPECT_EQ(m->num_imported(ImportKind::kFunc), 1u);
}

TEST(DecoderTest, DecodesMemoryAndData) {
  ModuleBuilder b;
  b.add_memory(2, 16);
  b.add_data(1024, "hello");
  auto m = decode_module(b.build());
  ASSERT_TRUE(m.is_ok());
  ASSERT_EQ(m->memories.size(), 1u);
  EXPECT_EQ(m->memories[0].limits.min, 2u);
  EXPECT_EQ(*m->memories[0].limits.max, 16u);
  ASSERT_EQ(m->datas.size(), 1u);
  EXPECT_EQ(m->datas[0].offset.i32, 1024);
  EXPECT_EQ(m->datas[0].bytes.size(), 5u);
}

TEST(DecoderTest, DecodesTableAndElements) {
  auto bytes = build_table_dispatch();
  auto m = decode_module(bytes);
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  ASSERT_EQ(m->tables.size(), 1u);
  EXPECT_EQ(m->tables[0].limits.min, 4u);
  ASSERT_EQ(m->elements.size(), 1u);
  EXPECT_EQ(m->elements[0].func_indices.size(), 4u);
}

TEST(DecoderTest, DecodesGlobals) {
  ModuleBuilder b;
  b.add_global(ValType::kI32, true, 42, "counter");
  b.add_global(ValType::kI64, false, -7);
  auto m = decode_module(b.build());
  ASSERT_TRUE(m.is_ok());
  ASSERT_EQ(m->globals.size(), 2u);
  EXPECT_TRUE(m->globals[0].type.mutable_);
  EXPECT_EQ(m->globals[0].init.i32, 42);
  EXPECT_FALSE(m->globals[1].type.mutable_);
  EXPECT_EQ(m->globals[1].init.i64, -7);
}

TEST(DecoderTest, DecodesCustomSection) {
  ModuleBuilder b;
  b.add_custom_section("producers", {1, 2, 3});
  auto m = decode_module(b.build());
  ASSERT_TRUE(m.is_ok());
  ASSERT_EQ(m->customs.size(), 1u);
  EXPECT_EQ(m->customs[0].name, "producers");
  EXPECT_EQ(m->customs[0].bytes.size(), 3u);
}

TEST(DecoderTest, RejectsOutOfOrderSections) {
  // Memory section (5) before function section (3).
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
                                5,    3,    1,    0,    1,           // memory
                                1,    4,    1,    0x60, 0, 0};       // type
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsCodeCountMismatch) {
  // One declared function, zero bodies.
  std::vector<uint8_t> bytes = {
      0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
      1,    4,    1,    0x60, 0,    0,        // type () -> ()
      3,    2,    1,    0,                    // one function of type 0
      10,   1,    0};                         // zero bodies
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsSectionTrailingBytes) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
                                1,    5,    1,    0x60, 0,    0, 0xff};
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsTruncatedSection) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
                                1,    100,  1};  // claims 100 bytes
  EXPECT_FALSE(decode_module(bytes).is_ok());
}

TEST(DecoderTest, RejectsMultiValueResults) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0,    0, 0,
                                1,    6,    1,    0x60, 0,    2,    0x7f,
                                0x7f};
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsBadValueType) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0,    0, 0,
                                1,    5,    1,    0x60, 1,    0x20, 0};
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsLimitsMaxBelowMin) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
                                5,    4,    1,    1,    5,    2};  // min 5 max 2
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, RejectsBodyWithoutEnd) {
  std::vector<uint8_t> bytes = {
      0x00, 0x61, 0x73, 0x6d, 0x01, 0, 0, 0,
      1,    4,    1,    0x60, 0,    0,       // type
      3,    2,    1,    0,                   // func
      10,   5,    1,    3,    0,    0x41, 0};  // body: i32.const 0, no end
  EXPECT_EQ(decode_module(bytes).status().code(), ErrorCode::kMalformed);
}

TEST(DecoderTest, WorkloadModulesAllDecode) {
  for (const auto& bytes :
       {build_minimal_microservice(), build_compute_kernel(),
        build_memory_stress(), build_table_dispatch(), build_file_logger()}) {
    auto m = decode_module(bytes);
    EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  }
}

TEST(DecoderTest, ResidentBytesScalesWithModule) {
  auto small = decode_module(build_compute_kernel());
  auto large = decode_module(build_minimal_microservice());
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_GT(small->resident_bytes(), 0u);
  EXPECT_GT(large->resident_bytes(), small->resident_bytes())
      << "microservice has imports + data, must be bigger";
}

}  // namespace
}  // namespace wasmctr::wasm
