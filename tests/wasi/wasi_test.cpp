// WASI host-function tests: modules built to poke each syscall directly.
#include "wasi/wasi.hpp"

#include <gtest/gtest.h>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace wasmctr::wasi {
namespace {

using wasm::FnBuilder;
using wasm::ModuleBuilder;
using wasm::ValType;
using wasm::Value;

struct Harness {
  VirtualFs fs;
  std::unique_ptr<WasiContext> ctx;
  std::unique_ptr<wasm::Instance> inst;
};

/// Instantiate `b`'s module with WASI registered. Heap-allocated: the
/// context holds a reference to the harness's VirtualFs.
std::unique_ptr<Harness> make(ModuleBuilder& b, WasiOptions opts) {
  auto h = std::make_unique<Harness>();
  h->ctx = std::make_unique<WasiContext>(std::move(opts), h->fs);
  auto m = wasm::decode_module(b.build());
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_TRUE(validate_module(*m).is_ok()) << validate_module(*m).to_string();
  wasm::ImportResolver resolver;
  h->ctx->register_imports(resolver);
  auto inst = wasm::Instance::instantiate(std::move(*m), resolver);
  EXPECT_TRUE(inst.is_ok()) << inst.status().to_string();
  h->inst = std::move(*inst);
  return h;
}

TEST(WasiTest, ArgsRoundtrip) {
  ModuleBuilder b;
  const uint32_t sizes = b.import_function(
      "wasi_snapshot_preview1", "args_sizes_get",
      {ValType::kI32, ValType::kI32}, {ValType::kI32});
  const uint32_t get = b.import_function("wasi_snapshot_preview1", "args_get",
                                         {ValType::kI32, ValType::kI32},
                                         {ValType::kI32});
  b.add_memory(1, 1);
  // run() -> argc; also materializes argv at 200/buf at 300.
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(100).i32_const(104).call(sizes).drop();
  f.i32_const(200).i32_const(300).call(get).drop();
  f.i32_const(100).i32_load();
  f.end();

  WasiOptions opts;
  opts.args = {"app.wasm", "--threads", "4"};
  auto h = make(b, std::move(opts));
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ((**r).i32(), 3);
  // argv[1] must point at "--threads" inside the packed buffer.
  auto* mem = h->inst->memory();
  auto argv1 = mem->load<uint32_t>(204, 0);
  ASSERT_TRUE(argv1.is_ok());
  auto s = mem->read_string(*argv1, 9);
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(*s, "--threads");
}

TEST(WasiTest, EnvironRoundtrip) {
  ModuleBuilder b;
  const uint32_t sizes = b.import_function(
      "wasi_snapshot_preview1", "environ_sizes_get",
      {ValType::kI32, ValType::kI32}, {ValType::kI32});
  const uint32_t get = b.import_function(
      "wasi_snapshot_preview1", "environ_get",
      {ValType::kI32, ValType::kI32}, {ValType::kI32});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(100).i32_const(104).call(sizes).drop();
  f.i32_const(200).i32_const(300).call(get).drop();
  f.i32_const(104).i32_load();  // total byte size
  f.end();

  WasiOptions opts;
  opts.env = {{"PORT", "8080"}, {"MODE", "prod"}};
  auto h = make(b, std::move(opts));
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 10 + 10);  // "PORT=8080\0" + "MODE=prod\0"
  auto env0 = h->inst->memory()->load<uint32_t>(200, 0);
  auto s = h->inst->memory()->read_string(*env0, 9);
  EXPECT_EQ(*s, "PORT=8080");  // env preserves declaration order
}

TEST(WasiTest, FdWriteStdoutAndStderr) {
  ModuleBuilder b;
  const uint32_t fd_write = b.import_function(
      "wasi_snapshot_preview1", "fd_write",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  b.add_data(1024, "out");
  b.add_data(1032, "err");
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(16).i32_const(1024).i32_store();
  f.i32_const(20).i32_const(3).i32_store();
  f.i32_const(1).i32_const(16).i32_const(1).i32_const(64).call(fd_write).drop();
  f.i32_const(16).i32_const(1032).i32_store();
  f.i32_const(2).i32_const(16).i32_const(1).i32_const(64).call(fd_write);
  f.end();

  auto h = make(b, {});
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), kSuccess);
  EXPECT_EQ(h->ctx->stdout_data(), "out");
  EXPECT_EQ(h->ctx->stderr_data(), "err");
}

TEST(WasiTest, FdWriteBadFdReturnsEbadf) {
  ModuleBuilder b;
  const uint32_t fd_write = b.import_function(
      "wasi_snapshot_preview1", "fd_write",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(99).i32_const(16).i32_const(0).i32_const(64).call(fd_write);
  f.end();
  auto h = make(b, {});
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), kEBadf);
}

TEST(WasiTest, FdReadFromStdin) {
  ModuleBuilder b;
  const uint32_t fd_read = b.import_function(
      "wasi_snapshot_preview1", "fd_read",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(16).i32_const(1024).i32_store();  // buf
  f.i32_const(20).i32_const(64).i32_store();    // len
  f.i32_const(0).i32_const(16).i32_const(1).i32_const(100).call(fd_read).drop();
  f.i32_const(100).i32_load();  // nread
  f.end();
  auto h = make(b, {});
  h->ctx->set_stdin("ping");
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 4);
  EXPECT_EQ(*h->inst->memory()->read_string(1024, 4), "ping");
  // Second read: EOF.
  auto r2 = h->inst->invoke("run");
  EXPECT_EQ((**r2).i32(), 0);
}

TEST(WasiTest, PrestatEnumeratesPreopens) {
  ModuleBuilder b;
  const uint32_t prestat_get = b.import_function(
      "wasi_snapshot_preview1", "fd_prestat_get",
      {ValType::kI32, ValType::kI32}, {ValType::kI32});
  const uint32_t dir_name = b.import_function(
      "wasi_snapshot_preview1", "fd_prestat_dir_name",
      {ValType::kI32, ValType::kI32, ValType::kI32}, {ValType::kI32});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(3).i32_const(64).call(prestat_get).drop();
  f.i32_const(3).i32_const(128).i32_const(64).call(dir_name).drop();
  f.i32_const(68).i32_load();  // name length from prestat
  f.end();
  WasiOptions opts;
  opts.preopens = {{"/data", "bundle/data"}};
  auto h = make(b, std::move(opts));
  ASSERT_TRUE(h->fs.mkdirs("bundle/data").is_ok());
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), 5);
  EXPECT_EQ(*h->inst->memory()->read_string(128, 5), "/data");
  // fd 4 has no prestat.
  ModuleBuilder b2;
  (void)b2;
}

TEST(WasiTest, ClockIsMonotonicAndInjected) {
  ModuleBuilder b;
  const uint32_t clock = b.import_function(
      "wasi_snapshot_preview1", "clock_time_get",
      {ValType::kI32, ValType::kI64, ValType::kI32}, {ValType::kI32});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {ValType::kI64});
  f.i32_const(1).i64_const(0).i32_const(64).call(clock).drop();
  f.i32_const(64).i64_load();
  f.end();
  WasiOptions opts;
  uint64_t fake_now = 42'000;
  opts.clock_ns = [&fake_now] { return fake_now; };
  auto h = make(b, std::move(opts));
  auto r1 = h->inst->invoke("run");
  EXPECT_EQ((**r1).i64(), 42'000);
  fake_now = 43'000;
  auto r2 = h->inst->invoke("run");
  EXPECT_EQ((**r2).i64(), 43'000);
}

TEST(WasiTest, RandomIsSeededDeterministic) {
  auto run_with_seed = [](uint64_t seed) {
    ModuleBuilder b;
    const uint32_t random = b.import_function(
        "wasi_snapshot_preview1", "random_get",
        {ValType::kI32, ValType::kI32}, {ValType::kI32});
    b.add_memory(1, 1);
    FnBuilder& f = b.add_function("run", {}, {ValType::kI64});
    f.i32_const(64).i32_const(8).call(random).drop();
    f.i32_const(64).i64_load();
    f.end();
    WasiOptions opts;
    opts.random_seed = seed;
    VirtualFs fs;
    WasiContext ctx(std::move(opts), fs);
    auto m = wasm::decode_module(b.build());
    wasm::ImportResolver resolver;
    ctx.register_imports(resolver);
    auto inst = wasm::Instance::instantiate(std::move(*m), resolver);
    auto r = (*inst)->invoke("run");
    return (**r).u64();
  };
  EXPECT_EQ(run_with_seed(7), run_with_seed(7));
  EXPECT_NE(run_with_seed(7), run_with_seed(8));
}

TEST(WasiTest, ProcExitCapturesCode) {
  ModuleBuilder b;
  const uint32_t proc_exit = b.import_function(
      "wasi_snapshot_preview1", "proc_exit", {ValType::kI32}, {});
  b.add_memory(1, 1);
  FnBuilder& f = b.add_function("run", {}, {});
  f.i32_const(17).call(proc_exit);
  f.end();
  auto h = make(b, {});
  auto r = h->inst->invoke("run");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kTrap);
  EXPECT_TRUE(h->ctx->exited());
  EXPECT_EQ(h->ctx->exit_code(), 17u);
}

TEST(WasiTest, PathOpenEscapeRejected) {
  ModuleBuilder b;
  const uint32_t path_open = b.import_function(
      "wasi_snapshot_preview1", "path_open",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32,
       ValType::kI32, ValType::kI64, ValType::kI64, ValType::kI32,
       ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  b.add_data(512, "../../etc/passwd");
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(3)
      .i32_const(0)
      .i32_const(512)
      .i32_const(16)
      .i32_const(0)
      .i64_const(-1)
      .i64_const(-1)
      .i32_const(0)
      .i32_const(100)
      .call(path_open);
  f.end();
  WasiOptions opts;
  opts.preopens = {{"/data", "bundle/data"}};
  auto h = make(b, std::move(opts));
  ASSERT_TRUE(h->fs.mkdirs("bundle/data").is_ok());
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), kEAccess) << "sandbox escape must be refused";
}

TEST(WasiTest, PathOpenReadExistingFile) {
  ModuleBuilder b;
  const uint32_t path_open = b.import_function(
      "wasi_snapshot_preview1", "path_open",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32,
       ValType::kI32, ValType::kI64, ValType::kI64, ValType::kI32,
       ValType::kI32},
      {ValType::kI32});
  const uint32_t fd_read = b.import_function(
      "wasi_snapshot_preview1", "fd_read",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  b.add_data(512, "config.json");
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(3)
      .i32_const(0)
      .i32_const(512)
      .i32_const(11)
      .i32_const(0)
      .i64_const(-1)
      .i64_const(-1)
      .i32_const(0)
      .i32_const(100)
      .call(path_open)
      .drop();
  f.i32_const(16).i32_const(1024).i32_store();
  f.i32_const(20).i32_const(64).i32_store();
  f.i32_const(100).i32_load();
  f.i32_const(16).i32_const(1).i32_const(104).call(fd_read).drop();
  f.i32_const(104).i32_load();
  f.end();
  WasiOptions opts;
  opts.preopens = {{"/cfg", "bundle/cfg"}};
  auto h = make(b, std::move(opts));
  ASSERT_TRUE(h->fs.write_file("bundle/cfg/config.json", "{\"p\":1}").is_ok());
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ((**r).i32(), 7);
  EXPECT_EQ(*h->inst->memory()->read_string(1024, 7), "{\"p\":1}");
}

TEST(WasiTest, PathOpenMissingWithoutCreatFails) {
  ModuleBuilder b;
  const uint32_t path_open = b.import_function(
      "wasi_snapshot_preview1", "path_open",
      {ValType::kI32, ValType::kI32, ValType::kI32, ValType::kI32,
       ValType::kI32, ValType::kI64, ValType::kI64, ValType::kI32,
       ValType::kI32},
      {ValType::kI32});
  b.add_memory(1, 1);
  b.add_data(512, "absent.txt");
  FnBuilder& f = b.add_function("run", {}, {ValType::kI32});
  f.i32_const(3)
      .i32_const(0)
      .i32_const(512)
      .i32_const(10)
      .i32_const(0)  // no O_CREAT
      .i64_const(-1)
      .i64_const(-1)
      .i32_const(0)
      .i32_const(100)
      .call(path_open);
  f.end();
  WasiOptions opts;
  opts.preopens = {{"/d", "bundle/d"}};
  auto h = make(b, std::move(opts));
  ASSERT_TRUE(h->fs.mkdirs("bundle/d").is_ok());
  auto r = h->inst->invoke("run");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((**r).i32(), kENoent);
}

}  // namespace
}  // namespace wasmctr::wasi
