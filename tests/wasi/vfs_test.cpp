#include "wasi/vfs.hpp"

#include <gtest/gtest.h>

namespace wasmctr::wasi {
namespace {

TEST(SplitPathTest, Normalization) {
  auto p = split_path("/a//b/./c/");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(*p, (std::vector<std::string>{"a", "b", "c"}));
  auto dotdot = split_path("a/b/../c");
  ASSERT_TRUE(dotdot.is_ok());
  EXPECT_EQ(*dotdot, (std::vector<std::string>{"a", "c"}));
  auto empty = split_path("");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->empty());
}

TEST(SplitPathTest, EscapeRejected) {
  EXPECT_EQ(split_path("..").status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(split_path("a/../../b").status().code(),
            ErrorCode::kPermissionDenied);
}

TEST(VfsTest, WriteAndReadFile) {
  VirtualFs fs;
  ASSERT_TRUE(fs.write_file("dir/sub/file.txt", "contents").is_ok());
  auto r = fs.read_file("dir/sub/file.txt");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, "contents");
  EXPECT_TRUE(fs.exists("dir"));
  EXPECT_TRUE(fs.exists("dir/sub"));
  EXPECT_FALSE(fs.exists("dir/other"));
}

TEST(VfsTest, OverwriteReplacesContents) {
  VirtualFs fs;
  ASSERT_TRUE(fs.write_file("f", "old").is_ok());
  ASSERT_TRUE(fs.write_file("f", "new!").is_ok());
  EXPECT_EQ(*fs.read_file("f"), "new!");
}

TEST(VfsTest, AppendCreatesAndExtends) {
  VirtualFs fs;
  ASSERT_TRUE(fs.append_file("log", "a").is_ok());
  ASSERT_TRUE(fs.append_file("log", "b").is_ok());
  EXPECT_EQ(*fs.read_file("log"), "ab");
}

TEST(VfsTest, MkdirsIdempotent) {
  VirtualFs fs;
  EXPECT_TRUE(fs.mkdirs("a/b/c").is_ok());
  EXPECT_TRUE(fs.mkdirs("a/b/c").is_ok());
  EXPECT_TRUE(fs.mkdirs("a/b").is_ok());
  auto node = fs.resolve("a/b/c");
  ASSERT_TRUE(node.is_ok());
  EXPECT_TRUE((*node)->is_dir());
}

TEST(VfsTest, FileDirConflicts) {
  VirtualFs fs;
  ASSERT_TRUE(fs.write_file("x", "data").is_ok());
  EXPECT_FALSE(fs.mkdirs("x").is_ok());
  ASSERT_TRUE(fs.mkdirs("d").is_ok());
  EXPECT_FALSE(fs.write_file("d", "data").is_ok());
}

TEST(VfsTest, ReadMissingFails) {
  VirtualFs fs;
  EXPECT_EQ(fs.read_file("nope").status().code(), ErrorCode::kNotFound);
}

TEST(VfsTest, ReadDirectoryFails) {
  VirtualFs fs;
  ASSERT_TRUE(fs.mkdirs("d").is_ok());
  EXPECT_EQ(fs.read_file("d").status().code(), ErrorCode::kInvalidArgument);
}

TEST(VfsTest, RemoveSemantics) {
  VirtualFs fs;
  ASSERT_TRUE(fs.write_file("d/f", "x").is_ok());
  EXPECT_EQ(fs.remove("d").code(), ErrorCode::kFailedPrecondition)
      << "non-empty directory";
  EXPECT_TRUE(fs.remove("d/f").is_ok());
  EXPECT_TRUE(fs.remove("d").is_ok());
  EXPECT_EQ(fs.remove("d").code(), ErrorCode::kNotFound);
}

TEST(VfsTest, ListSorted) {
  VirtualFs fs;
  ASSERT_TRUE(fs.write_file("d/b", "").is_ok());
  ASSERT_TRUE(fs.write_file("d/a", "").is_ok());
  ASSERT_TRUE(fs.mkdirs("d/c").is_ok());
  auto names = fs.list("d");
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(VfsTest, TotalBytesAccounting) {
  VirtualFs fs;
  EXPECT_EQ(fs.total_bytes(), 0u);
  ASSERT_TRUE(fs.write_file("a", "1234").is_ok());
  ASSERT_TRUE(fs.write_file("d/b", "56789").is_ok());
  EXPECT_EQ(fs.total_bytes(), 9u);
  ASSERT_TRUE(fs.remove("a").is_ok());
  EXPECT_EQ(fs.total_bytes(), 5u);
}

}  // namespace
}  // namespace wasmctr::wasi
