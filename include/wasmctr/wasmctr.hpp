// wasmctr — Memory Efficient WebAssembly Containers (IPPS 2025), as a
// library.
//
// Umbrella header exposing the three API layers a downstream user embeds:
//
//   * Engine layer   — build/decode/validate/run WebAssembly with WASI:
//                      wasm::ModuleBuilder, wasm::Instance, wasi::WasiContext,
//                      engines::Engine (WAMR-style interpreter + profiles).
//   * Runtime layer  — OCI bundles and low-level runtimes, including the
//                      paper's WAMR-in-crun integration: oci::Crun,
//                      oci::Runc, oci::Youki, containerd::Containerd.
//   * Cluster layer  — the simulated Kubernetes testbed and measurement
//                      probes: k8s::Cluster, k8s::MetricsServer,
//                      k8s::FreeProbe.
//
// See examples/quickstart.cpp for the 60-second tour.
#pragma once

#include "containerd/containerd.hpp"   // IWYU pragma: export
#include "engines/engine.hpp"          // IWYU pragma: export
#include "k8s/cluster.hpp"             // IWYU pragma: export
#include "oci/runtime.hpp"             // IWYU pragma: export
#include "pylite/interp.hpp"           // IWYU pragma: export
#include "wasi/wasi.hpp"               // IWYU pragma: export
#include "wasm/builder.hpp"            // IWYU pragma: export
#include "wasm/decoder.hpp"            // IWYU pragma: export
#include "wasm/exec/instance.hpp"      // IWYU pragma: export
#include "wasm/validator.hpp"          // IWYU pragma: export
#include "wasm/workloads.hpp"          // IWYU pragma: export
