# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_wasm[1]_include.cmake")
include("/root/repo/build/tests/test_wasi[1]_include.cmake")
include("/root/repo/build/tests/test_pylite[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_oci[1]_include.cmake")
include("/root/repo/build/tests/test_containerd[1]_include.cmake")
include("/root/repo/build/tests/test_k8s[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
