file(REMOVE_RECURSE
  "CMakeFiles/test_pylite.dir/pylite/pylite_test.cpp.o"
  "CMakeFiles/test_pylite.dir/pylite/pylite_test.cpp.o.d"
  "test_pylite"
  "test_pylite.pdb"
  "test_pylite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pylite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
