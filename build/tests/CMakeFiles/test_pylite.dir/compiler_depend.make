# Empty compiler generated dependencies file for test_pylite.
# This may be replaced when dependencies are built.
