# Empty dependencies file for test_containerd.
# This may be replaced when dependencies are built.
