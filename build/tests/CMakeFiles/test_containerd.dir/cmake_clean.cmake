file(REMOVE_RECURSE
  "CMakeFiles/test_containerd.dir/containerd/containerd_test.cpp.o"
  "CMakeFiles/test_containerd.dir/containerd/containerd_test.cpp.o.d"
  "test_containerd"
  "test_containerd.pdb"
  "test_containerd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_containerd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
