file(REMOVE_RECURSE
  "CMakeFiles/test_engines.dir/engines/calibration_test.cpp.o"
  "CMakeFiles/test_engines.dir/engines/calibration_test.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/engine_test.cpp.o"
  "CMakeFiles/test_engines.dir/engines/engine_test.cpp.o.d"
  "test_engines"
  "test_engines.pdb"
  "test_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
