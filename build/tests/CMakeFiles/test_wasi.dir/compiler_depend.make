# Empty compiler generated dependencies file for test_wasi.
# This may be replaced when dependencies are built.
