file(REMOVE_RECURSE
  "CMakeFiles/test_wasi.dir/wasi/vfs_test.cpp.o"
  "CMakeFiles/test_wasi.dir/wasi/vfs_test.cpp.o.d"
  "CMakeFiles/test_wasi.dir/wasi/wasi_test.cpp.o"
  "CMakeFiles/test_wasi.dir/wasi/wasi_test.cpp.o.d"
  "test_wasi"
  "test_wasi.pdb"
  "test_wasi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wasi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
