file(REMOVE_RECURSE
  "CMakeFiles/test_wasm.dir/wasm/control_flow_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/control_flow_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/decoder_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/decoder_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/instantiate_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/instantiate_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/interpreter_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/interpreter_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/numeric_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/numeric_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/validator_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/validator_test.cpp.o.d"
  "CMakeFiles/test_wasm.dir/wasm/workloads_test.cpp.o"
  "CMakeFiles/test_wasm.dir/wasm/workloads_test.cpp.o.d"
  "test_wasm"
  "test_wasm.pdb"
  "test_wasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
