# Empty compiler generated dependencies file for test_wasm.
# This may be replaced when dependencies are built.
