
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wasm/control_flow_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/control_flow_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/control_flow_test.cpp.o.d"
  "/root/repo/tests/wasm/decoder_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/decoder_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/decoder_test.cpp.o.d"
  "/root/repo/tests/wasm/instantiate_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/instantiate_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/instantiate_test.cpp.o.d"
  "/root/repo/tests/wasm/interpreter_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/interpreter_test.cpp.o.d"
  "/root/repo/tests/wasm/numeric_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/numeric_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/numeric_test.cpp.o.d"
  "/root/repo/tests/wasm/validator_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/validator_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/validator_test.cpp.o.d"
  "/root/repo/tests/wasm/workloads_test.cpp" "tests/CMakeFiles/test_wasm.dir/wasm/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/test_wasm.dir/wasm/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wasmctr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
