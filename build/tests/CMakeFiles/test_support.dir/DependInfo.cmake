
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/byteio_test.cpp" "tests/CMakeFiles/test_support.dir/support/byteio_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/byteio_test.cpp.o.d"
  "/root/repo/tests/support/json_test.cpp" "tests/CMakeFiles/test_support.dir/support/json_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/json_test.cpp.o.d"
  "/root/repo/tests/support/leb128_test.cpp" "tests/CMakeFiles/test_support.dir/support/leb128_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/leb128_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "tests/CMakeFiles/test_support.dir/support/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/rng_test.cpp.o.d"
  "/root/repo/tests/support/status_test.cpp" "tests/CMakeFiles/test_support.dir/support/status_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/status_test.cpp.o.d"
  "/root/repo/tests/support/units_test.cpp" "tests/CMakeFiles/test_support.dir/support/units_test.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wasmctr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
