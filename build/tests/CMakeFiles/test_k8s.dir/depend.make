# Empty dependencies file for test_k8s.
# This may be replaced when dependencies are built.
