file(REMOVE_RECURSE
  "CMakeFiles/test_k8s.dir/k8s/cluster_test.cpp.o"
  "CMakeFiles/test_k8s.dir/k8s/cluster_test.cpp.o.d"
  "CMakeFiles/test_k8s.dir/k8s/control_plane_test.cpp.o"
  "CMakeFiles/test_k8s.dir/k8s/control_plane_test.cpp.o.d"
  "test_k8s"
  "test_k8s.pdb"
  "test_k8s[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
