file(REMOVE_RECURSE
  "CMakeFiles/test_oci.dir/oci/bundle_test.cpp.o"
  "CMakeFiles/test_oci.dir/oci/bundle_test.cpp.o.d"
  "CMakeFiles/test_oci.dir/oci/cache_test.cpp.o"
  "CMakeFiles/test_oci.dir/oci/cache_test.cpp.o.d"
  "CMakeFiles/test_oci.dir/oci/runtime_test.cpp.o"
  "CMakeFiles/test_oci.dir/oci/runtime_test.cpp.o.d"
  "CMakeFiles/test_oci.dir/oci/spec_test.cpp.o"
  "CMakeFiles/test_oci.dir/oci/spec_test.cpp.o.d"
  "test_oci"
  "test_oci.pdb"
  "test_oci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
