
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oci/bundle_test.cpp" "tests/CMakeFiles/test_oci.dir/oci/bundle_test.cpp.o" "gcc" "tests/CMakeFiles/test_oci.dir/oci/bundle_test.cpp.o.d"
  "/root/repo/tests/oci/cache_test.cpp" "tests/CMakeFiles/test_oci.dir/oci/cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_oci.dir/oci/cache_test.cpp.o.d"
  "/root/repo/tests/oci/runtime_test.cpp" "tests/CMakeFiles/test_oci.dir/oci/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_oci.dir/oci/runtime_test.cpp.o.d"
  "/root/repo/tests/oci/spec_test.cpp" "tests/CMakeFiles/test_oci.dir/oci/spec_test.cpp.o" "gcc" "tests/CMakeFiles/test_oci.dir/oci/spec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wasmctr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
