# Empty compiler generated dependencies file for test_oci.
# This may be replaced when dependencies are built.
