# Empty compiler generated dependencies file for wasmctr.
# This may be replaced when dependencies are built.
