
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containerd/containerd.cpp" "src/CMakeFiles/wasmctr.dir/containerd/containerd.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/containerd/containerd.cpp.o.d"
  "/root/repo/src/engines/engine.cpp" "src/CMakeFiles/wasmctr.dir/engines/engine.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/engines/engine.cpp.o.d"
  "/root/repo/src/k8s/api_server.cpp" "src/CMakeFiles/wasmctr.dir/k8s/api_server.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/k8s/api_server.cpp.o.d"
  "/root/repo/src/k8s/cluster.cpp" "src/CMakeFiles/wasmctr.dir/k8s/cluster.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/k8s/cluster.cpp.o.d"
  "/root/repo/src/k8s/kubelet.cpp" "src/CMakeFiles/wasmctr.dir/k8s/kubelet.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/k8s/kubelet.cpp.o.d"
  "/root/repo/src/k8s/metrics_server.cpp" "src/CMakeFiles/wasmctr.dir/k8s/metrics_server.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/k8s/metrics_server.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/CMakeFiles/wasmctr.dir/k8s/scheduler.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/k8s/scheduler.cpp.o.d"
  "/root/repo/src/mem/cgroup.cpp" "src/CMakeFiles/wasmctr.dir/mem/cgroup.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/mem/cgroup.cpp.o.d"
  "/root/repo/src/mem/node_memory.cpp" "src/CMakeFiles/wasmctr.dir/mem/node_memory.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/mem/node_memory.cpp.o.d"
  "/root/repo/src/oci/bundle.cpp" "src/CMakeFiles/wasmctr.dir/oci/bundle.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/oci/bundle.cpp.o.d"
  "/root/repo/src/oci/runtime.cpp" "src/CMakeFiles/wasmctr.dir/oci/runtime.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/oci/runtime.cpp.o.d"
  "/root/repo/src/oci/spec.cpp" "src/CMakeFiles/wasmctr.dir/oci/spec.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/oci/spec.cpp.o.d"
  "/root/repo/src/pylite/interp.cpp" "src/CMakeFiles/wasmctr.dir/pylite/interp.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/pylite/interp.cpp.o.d"
  "/root/repo/src/pylite/lexer.cpp" "src/CMakeFiles/wasmctr.dir/pylite/lexer.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/pylite/lexer.cpp.o.d"
  "/root/repo/src/pylite/parser.cpp" "src/CMakeFiles/wasmctr.dir/pylite/parser.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/pylite/parser.cpp.o.d"
  "/root/repo/src/pylite/scripts.cpp" "src/CMakeFiles/wasmctr.dir/pylite/scripts.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/pylite/scripts.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/wasmctr.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/wasmctr.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/wasmctr.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/sim/process.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/wasmctr.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/sim/resource.cpp.o.d"
  "/root/repo/src/support/byteio.cpp" "src/CMakeFiles/wasmctr.dir/support/byteio.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/byteio.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/CMakeFiles/wasmctr.dir/support/json.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/json.cpp.o.d"
  "/root/repo/src/support/leb128.cpp" "src/CMakeFiles/wasmctr.dir/support/leb128.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/leb128.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/wasmctr.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/wasmctr.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/status.cpp" "src/CMakeFiles/wasmctr.dir/support/status.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/status.cpp.o.d"
  "/root/repo/src/support/units.cpp" "src/CMakeFiles/wasmctr.dir/support/units.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/support/units.cpp.o.d"
  "/root/repo/src/wasi/vfs.cpp" "src/CMakeFiles/wasmctr.dir/wasi/vfs.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasi/vfs.cpp.o.d"
  "/root/repo/src/wasi/wasi.cpp" "src/CMakeFiles/wasmctr.dir/wasi/wasi.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasi/wasi.cpp.o.d"
  "/root/repo/src/wasm/builder.cpp" "src/CMakeFiles/wasmctr.dir/wasm/builder.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/builder.cpp.o.d"
  "/root/repo/src/wasm/decoder.cpp" "src/CMakeFiles/wasmctr.dir/wasm/decoder.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/decoder.cpp.o.d"
  "/root/repo/src/wasm/exec/interpreter.cpp" "src/CMakeFiles/wasmctr.dir/wasm/exec/interpreter.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/exec/interpreter.cpp.o.d"
  "/root/repo/src/wasm/exec/memory.cpp" "src/CMakeFiles/wasmctr.dir/wasm/exec/memory.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/exec/memory.cpp.o.d"
  "/root/repo/src/wasm/module.cpp" "src/CMakeFiles/wasmctr.dir/wasm/module.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/module.cpp.o.d"
  "/root/repo/src/wasm/validator.cpp" "src/CMakeFiles/wasmctr.dir/wasm/validator.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/validator.cpp.o.d"
  "/root/repo/src/wasm/workloads.cpp" "src/CMakeFiles/wasmctr.dir/wasm/workloads.cpp.o" "gcc" "src/CMakeFiles/wasmctr.dir/wasm/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
