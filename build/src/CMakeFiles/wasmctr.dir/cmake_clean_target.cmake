file(REMOVE_RECURSE
  "libwasmctr.a"
)
