# Empty compiler generated dependencies file for bench_fig7_python_memory_free.
# This may be replaced when dependencies are built.
