# Empty dependencies file for bench_fig3_crun_wasm_memory_k8s.
# This may be replaced when dependencies are built.
