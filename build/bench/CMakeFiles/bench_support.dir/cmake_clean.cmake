file(REMOVE_RECURSE
  "../lib/libbench_support.a"
  "../lib/libbench_support.pdb"
  "CMakeFiles/bench_support.dir/__/src/bench_support/report.cpp.o"
  "CMakeFiles/bench_support.dir/__/src/bench_support/report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
