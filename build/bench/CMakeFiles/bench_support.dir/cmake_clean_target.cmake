file(REMOVE_RECURSE
  "../lib/libbench_support.a"
)
