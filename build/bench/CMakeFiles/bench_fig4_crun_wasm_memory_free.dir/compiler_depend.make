# Empty compiler generated dependencies file for bench_fig4_crun_wasm_memory_free.
# This may be replaced when dependencies are built.
