# Empty dependencies file for bench_table2_overview.
# This may be replaced when dependencies are built.
