file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_overview.dir/bench_table2_overview.cpp.o"
  "CMakeFiles/bench_table2_overview.dir/bench_table2_overview.cpp.o.d"
  "bench_table2_overview"
  "bench_table2_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
