file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_startup_400.dir/bench_fig9_startup_400.cpp.o"
  "CMakeFiles/bench_fig9_startup_400.dir/bench_fig9_startup_400.cpp.o.d"
  "bench_fig9_startup_400"
  "bench_fig9_startup_400.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_startup_400.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
