# Empty dependencies file for bench_fig9_startup_400.
# This may be replaced when dependencies are built.
