# Empty dependencies file for bench_fig6_python_memory_k8s.
# This may be replaced when dependencies are built.
