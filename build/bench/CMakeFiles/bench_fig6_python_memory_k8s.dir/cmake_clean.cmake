file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_python_memory_k8s.dir/bench_fig6_python_memory_k8s.cpp.o"
  "CMakeFiles/bench_fig6_python_memory_k8s.dir/bench_fig6_python_memory_k8s.cpp.o.d"
  "bench_fig6_python_memory_k8s"
  "bench_fig6_python_memory_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_python_memory_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
