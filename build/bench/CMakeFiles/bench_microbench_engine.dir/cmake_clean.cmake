file(REMOVE_RECURSE
  "CMakeFiles/bench_microbench_engine.dir/bench_microbench_engine.cpp.o"
  "CMakeFiles/bench_microbench_engine.dir/bench_microbench_engine.cpp.o.d"
  "bench_microbench_engine"
  "bench_microbench_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microbench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
