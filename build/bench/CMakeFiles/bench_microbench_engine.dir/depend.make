# Empty dependencies file for bench_microbench_engine.
# This may be replaced when dependencies are built.
