file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_overview.dir/bench_fig10_overview.cpp.o"
  "CMakeFiles/bench_fig10_overview.dir/bench_fig10_overview.cpp.o.d"
  "bench_fig10_overview"
  "bench_fig10_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
