# Empty dependencies file for bench_fig10_overview.
# This may be replaced when dependencies are built.
