# Empty compiler generated dependencies file for bench_fig8_startup_10.
# This may be replaced when dependencies are built.
