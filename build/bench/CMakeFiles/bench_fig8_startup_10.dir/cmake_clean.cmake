file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_startup_10.dir/bench_fig8_startup_10.cpp.o"
  "CMakeFiles/bench_fig8_startup_10.dir/bench_fig8_startup_10.cpp.o.d"
  "bench_fig8_startup_10"
  "bench_fig8_startup_10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_startup_10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
