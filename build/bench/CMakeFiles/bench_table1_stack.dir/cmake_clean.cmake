file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_stack.dir/bench_table1_stack.cpp.o"
  "CMakeFiles/bench_table1_stack.dir/bench_table1_stack.cpp.o.d"
  "bench_table1_stack"
  "bench_table1_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
