# Empty dependencies file for bench_fig5_runwasi_memory_free.
# This may be replaced when dependencies are built.
