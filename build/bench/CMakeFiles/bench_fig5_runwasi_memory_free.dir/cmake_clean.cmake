file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_runwasi_memory_free.dir/bench_fig5_runwasi_memory_free.cpp.o"
  "CMakeFiles/bench_fig5_runwasi_memory_free.dir/bench_fig5_runwasi_memory_free.cpp.o.d"
  "bench_fig5_runwasi_memory_free"
  "bench_fig5_runwasi_memory_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_runwasi_memory_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
