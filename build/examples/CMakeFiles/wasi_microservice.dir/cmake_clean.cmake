file(REMOVE_RECURSE
  "CMakeFiles/wasi_microservice.dir/wasi_microservice.cpp.o"
  "CMakeFiles/wasi_microservice.dir/wasi_microservice.cpp.o.d"
  "wasi_microservice"
  "wasi_microservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasi_microservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
