# Empty dependencies file for wasi_microservice.
# This may be replaced when dependencies are built.
