# Empty dependencies file for hybrid_deployment.
# This may be replaced when dependencies are built.
