file(REMOVE_RECURSE
  "CMakeFiles/hybrid_deployment.dir/hybrid_deployment.cpp.o"
  "CMakeFiles/hybrid_deployment.dir/hybrid_deployment.cpp.o.d"
  "hybrid_deployment"
  "hybrid_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
