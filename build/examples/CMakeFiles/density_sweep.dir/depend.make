# Empty dependencies file for density_sweep.
# This may be replaced when dependencies are built.
