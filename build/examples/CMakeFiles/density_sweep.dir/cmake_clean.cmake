file(REMOVE_RECURSE
  "CMakeFiles/density_sweep.dir/density_sweep.cpp.o"
  "CMakeFiles/density_sweep.dir/density_sweep.cpp.o.d"
  "density_sweep"
  "density_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
